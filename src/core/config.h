#pragma once

/// \file
/// EmptyResultConfig and the enums behind its tuning knobs.

#include <cstddef>

#include "common/status.h"
#include "expr/dnf.h"
#include "persist/options.h"

namespace erq {

/// Replacement policy for the C_aqp collection. The paper uses the clock
/// algorithm (§2.3); LRU and FIFO exist for the ablation benchmarks.
enum class EvictionPolicy { kClock, kLru, kFifo };

/// What to invalidate when a base relation is updated. The paper deletes
/// all stored information on any update (read-mostly environment);
/// kDropTouched scopes the invalidation to atomic query parts that mention
/// the updated relation — a strict superset of the paper's guarantee.
/// kFilterIrrelevant implements the §5 future-work extension: deletions
/// invalidate nothing (they cannot un-empty a result), and inserts drop
/// only the parts the new rows could actually satisfy (see
/// core/update_filter.h). Mutations without row information still drop
/// everything touching the relation.
enum class InvalidationMode { kDropAll, kDropTouched, kFilterIrrelevant };

/// Tuning knobs of the fast-detection method.
struct EmptyResultConfig {
  /// N_max: maximum number of atomic query parts stored in C_aqp (§2.3).
  size_t n_max = 100000;

  /// C_cost: optimizer-cost threshold separating low-cost queries (executed
  /// directly) from high-cost queries (checked against C_aqp first) (§2.2).
  double c_cost = 0.0;

  /// Bounds for the exponential DNF rewriting step (§2.3, step 2).
  DnfOptions dnf;

  /// Replacement policy when C_aqp is full (paper: clock).
  EvictionPolicy eviction = EvictionPolicy::kClock;
  /// Update-invalidation scope (paper: drop everything).
  InvalidationMode invalidation = InvalidationMode::kDropTouched;

  /// Use the signature prefilter [31] when searching entries by relation
  /// set containment. Off only for the ablation bench.
  bool enable_signatures = true;

  /// Use the inverted relation-name index when enumerating candidate
  /// entries (sub-linear subset/superset search). Off only for the
  /// ablation bench, where lookups fall back to scanning every entry —
  /// the pre-index behavior. The index itself is always maintained, so
  /// this knob isolates the lookup algorithm, not maintenance cost.
  bool enable_index = true;

  /// Number of C_aqp shards. Each entry resides in the shard its first
  /// relation name hashes to; lookups are lock-free against per-shard
  /// published snapshots, so shards bound only writer contention. 1 is
  /// the unsharded ablation baseline; the default matches
  /// CaqpCache::kDefaultShards.
  size_t shards = 8;

  /// Master switch; when false the manager always executes (baseline).
  bool detection_enabled = true;

  /// When true, the manager replaces c_cost with AdaptiveCostGate's
  /// break-even estimate once enough history has accumulated (§2.2's
  /// "decided based on past statistics").
  bool auto_tune_c_cost = false;

  /// Record empty results of low-cost queries too (paper says don't; knob
  /// for experiments).
  bool record_low_cost = false;

  /// Crash-safe persistence of C_aqp (snapshot + journal in
  /// `persist.dir`); disabled while the directory is empty. See
  /// DESIGN.md §7.
  PersistOptions persist;

  /// Rejects configurations the pipeline cannot run meaningfully (zero
  /// n_max, negative/non-finite c_cost, zero DNF term budget, enum values
  /// outside their range). EmptyResultManager calls this in its ctor and
  /// surfaces the Status from every entry point, so a mis-configured
  /// manager fails loudly instead of silently misbehaving.
  ERQ_NODISCARD Status Validate() const;
};

}  // namespace erq

