#include "core/config.h"

#include <cmath>

namespace erq {

Status EmptyResultConfig::Validate() const {
  if (n_max == 0) {
    return Status::InvalidArgument(
        "EmptyResultConfig.n_max must be positive: a zero-capacity C_aqp "
        "can never store an atomic query part (disable detection via "
        "detection_enabled=false instead)");
  }
  if (std::isnan(c_cost) || std::isinf(c_cost)) {
    return Status::InvalidArgument(
        "EmptyResultConfig.c_cost must be finite");
  }
  if (c_cost < 0.0) {
    return Status::InvalidArgument(
        "EmptyResultConfig.c_cost must be non-negative (0 checks every "
        "query)");
  }
  if (shards == 0) {
    return Status::InvalidArgument(
        "EmptyResultConfig.shards must be positive: every C_aqp entry "
        "needs a home shard (use shards=1 for the unsharded baseline)");
  }
  if (dnf.max_terms == 0) {
    return Status::InvalidArgument(
        "EmptyResultConfig.dnf.max_terms must be positive: every "
        "decomposition would be rejected as a DNF blow-up");
  }
  switch (eviction) {
    case EvictionPolicy::kClock:
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo:
      break;
    default:
      return Status::InvalidArgument(
          "EmptyResultConfig.eviction is not a known EvictionPolicy");
  }
  switch (invalidation) {
    case InvalidationMode::kDropAll:
    case InvalidationMode::kDropTouched:
    case InvalidationMode::kFilterIrrelevant:
      break;
    default:
      return Status::InvalidArgument(
          "EmptyResultConfig.invalidation is not a known InvalidationMode");
  }
  ERQ_RETURN_IF_ERROR(persist.Validate());
  return Status::OK();
}

}  // namespace erq
