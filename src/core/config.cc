#include "core/config.h"

#include <cmath>

namespace erq {

Status EmptyResultConfig::Validate() const {
  if (n_max == 0) {
    return Status::InvalidArgument(
        "EmptyResultConfig.n_max must be positive: a zero-capacity C_aqp "
        "can never store an atomic query part (disable detection via "
        "detection_enabled=false instead)");
  }
  if (std::isnan(c_cost) || std::isinf(c_cost)) {
    return Status::InvalidArgument(
        "EmptyResultConfig.c_cost must be finite");
  }
  if (c_cost < 0.0) {
    return Status::InvalidArgument(
        "EmptyResultConfig.c_cost must be non-negative (0 checks every "
        "query)");
  }
  if (shards == 0) {
    return Status::InvalidArgument(
        "EmptyResultConfig.shards must be positive: every C_aqp entry "
        "needs a home shard (use shards=1 for the unsharded baseline)");
  }
  if (dnf.max_terms == 0) {
    return Status::InvalidArgument(
        "EmptyResultConfig.dnf.max_terms must be positive: every "
        "decomposition would be rejected as a DNF blow-up");
  }
  switch (eviction) {
    case EvictionPolicy::kClock:
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo:
      break;
    default:
      return Status::InvalidArgument(
          "EmptyResultConfig.eviction is not a known EvictionPolicy");
  }
  switch (invalidation) {
    case InvalidationMode::kDropAll:
    case InvalidationMode::kDropTouched:
    case InvalidationMode::kFilterIrrelevant:
      break;
    default:
      return Status::InvalidArgument(
          "EmptyResultConfig.invalidation is not a known InvalidationMode");
  }
  if (partitions == 0) {
    return Status::InvalidArgument(
        "EmptyResultConfig.partitions must be positive (use partitions=1 "
        "for the unpartitioned ablation)");
  }
  if (reuse.enabled) {
    if (reuse.max_rows == 0) {
      return Status::InvalidArgument(
          "EmptyResultConfig.reuse.max_rows must be positive when reuse is "
          "enabled: no intermediate could ever be harvested (zero-row "
          "emptiness facts already live in C_aqp)");
    }
    if (reuse.budget_bytes == 0) {
      return Status::InvalidArgument(
          "EmptyResultConfig.reuse.budget_bytes must be positive when "
          "reuse is enabled: every admission would be rejected (disable "
          "reuse via reuse.enabled=false instead)");
    }
  }
  ERQ_RETURN_IF_ERROR(persist.Validate());
  return Status::OK();
}

Status ServerOptions::Validate() const {
  if (host.empty()) {
    return Status::InvalidArgument(
        "ServerOptions.host must be a bindable address (use 127.0.0.1 for "
        "loopback)");
  }
  if (max_connections == 0) {
    return Status::InvalidArgument(
        "ServerOptions.max_connections must be positive: a server that "
        "admits no connections cannot serve");
  }
  if (max_tenants == 0) {
    return Status::InvalidArgument(
        "ServerOptions.max_tenants must be positive: every request needs "
        "a tenant namespace (the default tenant counts)");
  }
  if (global_n_max < max_tenants) {
    return Status::InvalidArgument(
        "ServerOptions.global_n_max must give every tenant at least one "
        "C_aqp entry (global_n_max >= max_tenants)");
  }
  if (max_request_bytes == 0) {
    return Status::InvalidArgument(
        "ServerOptions.max_request_bytes must be positive: no request "
        "would ever parse");
  }
  if (tenant_config.persist.enabled()) {
    return Status::InvalidArgument(
        "ServerOptions.tenant_config.persist must stay disabled: tenants "
        "share a process but not a journal directory");
  }
  if (tenant_config.reuse.enabled && global_reuse_bytes < max_tenants) {
    return Status::InvalidArgument(
        "ServerOptions.global_reuse_bytes must give every tenant a "
        "positive reuse budget (global_reuse_bytes >= max_tenants)");
  }
  // Validate the template with the smallest quota any tenant can get, so
  // a config that validates here cannot fail at lazy tenant creation.
  EmptyResultConfig probe = tenant_config;
  probe.n_max = global_n_max / max_tenants;
  probe.reuse.budget_bytes = global_reuse_bytes / max_tenants;
  ERQ_RETURN_IF_ERROR(probe.Validate());
  return Status::OK();
}

}  // namespace erq
