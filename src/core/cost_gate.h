#pragma once

/// \file
/// AdaptiveCostGate — data-driven tuning of the C_cost threshold (§2.2).

#include <cstddef>
#include <cstdint>

namespace erq {

/// Value-type snapshot of the adaptive C_cost model at one instant. This
/// is what accessors hand out (EmptyResultManager::cost_gate_snapshot()):
/// a plain struct of fitted components, deliberately not a reference to
/// the live gate, so the API cannot imply that reads observe later
/// updates. Suggest() re-evaluates the break-even formula on the frozen
/// components.
struct CostGateSnapshot {
  uint64_t executed = 0;       ///< observed executed queries
  uint64_t detected = 0;       ///< observed detection hits
  uint64_t empty_results = 0;  ///< executed queries that came back empty
  uint64_t checks = 0;         ///< queries that paid a C_aqp check

  double average_check_seconds = 0.0;        ///< mean C_aqp check overhead
  double alpha_seconds_per_cost_unit = 0.0;  ///< exec_time(c) ~ alpha * c
  double empty_fraction = 0.0;               ///< empty results / executed
  double hit_fraction = 0.0;  ///< detections / (detections + empty results)

  /// Total observations backing the snapshot.
  uint64_t samples() const { return executed + detected; }

  /// The break-even C_cost estimate
  ///     C* = check_cost / (alpha * p_empty * p_hit)
  /// frozen at snapshot time. Returns `fallback` until at least
  /// `min_samples` observations (and at least one executed query) exist.
  double Suggest(double fallback = 0.0, uint64_t min_samples = 50) const;
};

/// §2.2 leaves C_cost as "an empirical number [whose] value can be decided
/// based on past statistics: how expensive it is to use the information
/// stored in C_aqp to check whether a query will return an empty result
/// set, how likely a query will return an empty result set, etc."
///
/// AdaptiveCostGate implements exactly that bookkeeping. It observes, per
/// query: the optimizer cost estimate, the measured check overhead, the
/// measured execution time, and whether the result was empty. The check on
/// a query with optimizer cost c pays `check_cost` always and saves
/// `exec_time(c)` with probability ~ p_empty * p_hit. Modelling
/// exec_time(c) ≈ alpha * c (a least-squares fit through the origin), the
/// break-even cost is
///
///     C* = check_cost / (alpha * p_empty * p_hit)
///
/// Below C* the expected saving does not pay for the check. The gate keeps
/// running sums, so Snapshot() and Suggest() are O(1) and can be consulted
/// any time; callers decide when (or whether) to adopt the suggestion.
class AdaptiveCostGate {
 public:
  /// Records a query that was checked and/or executed. `estimated_cost`
  /// is the optimizer estimate; `check_seconds` 0 when no check ran;
  /// `execute_seconds` 0 when execution was skipped.
  void ObserveExecuted(double estimated_cost, double check_seconds,
                       double execute_seconds, bool was_empty);

  /// Records a detection hit (check succeeded; execution skipped).
  void ObserveDetected(double estimated_cost, double check_seconds);

  /// Number of observations so far.
  uint64_t samples() const { return executed_ + detected_; }

  /// Consistent value copy of the fitted model.
  CostGateSnapshot Snapshot() const;

  /// Shorthand for Snapshot().Suggest(...).
  double Suggest(double fallback = 0.0, uint64_t min_samples = 50) const;

  // --- Fitted components (exposed for tests / introspection) ---
  /// Mean seconds per C_aqp check.
  double AverageCheckSeconds() const;
  double AlphaSecondsPerCostUnit() const;  ///< exec_time(c) ~ alpha * c
  /// Fraction of executed queries that returned no rows.
  double EmptyFraction() const;
  double HitFraction() const;  ///< detections / (detections + empty results)

 private:
  uint64_t executed_ = 0;
  uint64_t detected_ = 0;
  uint64_t empty_results_ = 0;
  uint64_t checks_ = 0;
  double check_seconds_sum_ = 0.0;
  // Least-squares through the origin: alpha = sum(c*t) / sum(c^2).
  double cost_time_sum_ = 0.0;
  double cost_sq_sum_ = 0.0;
};

}  // namespace erq
