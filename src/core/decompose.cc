#include "core/decompose.h"

#include <unordered_map>

#include "common/string_util.h"
#include "expr/normalize.h"

namespace erq {

namespace {

/// True when `node` is a scan whose zero output may be an artifact of
/// its scan condition rather than an empty relation. Two cases:
///   * a partition-pruned table scan — every skipped partition provably
///     holds no row satisfying the scan condition, but the relation
///     itself can be non-empty;
///   * a spliced CachedResultScan — a zero-row reuse entry means
///     sigma_stored_condition(relation) is empty, not that the relation
///     is.
/// Such a node is only *conditionally* empty, so harvesting it as a
/// bare-relation part would wrongly record "relation is empty"; the
/// predicate node above it (whose part carries the condition) is the
/// lowest sound empty part.
bool ConditionallyEmptyScan(const PhysOpPtr& node) {
  return (node->kind == PhysOpKind::kTableScan &&
          node->partitions_pruned > 0) ||
         node->kind == PhysOpKind::kCachedResultScan;
}

void FindLowest(const PhysOpPtr& node, std::vector<PhysOpPtr>* out) {
  if (node->actual_rows != 0) {
    // Non-empty or unexecuted: nothing here, but empty descendants may
    // exist (e.g. under a union or outer join).
    for (const PhysOpPtr& c : node->children) FindLowest(c, out);
    return;
  }
  if (ConditionallyEmptyScan(node)) return;  // nothing sound to harvest
  // This node is empty. If some executed child is unconditionally empty,
  // the cause is deeper; otherwise this is a lowest-level empty part.
  bool child_empty = false;
  for (const PhysOpPtr& c : node->children) {
    if (c->actual_rows == 0 && !ConditionallyEmptyScan(c)) {
      child_empty = true;
      break;
    }
  }
  if (!child_empty) {
    out->push_back(node);
    return;
  }
  for (const PhysOpPtr& c : node->children) FindLowest(c, out);
}

}  // namespace

std::vector<PhysOpPtr> FindLowestEmptyParts(const PhysOpPtr& root) {
  std::vector<PhysOpPtr> out;
  if (root != nullptr && root->actual_rows >= 0) FindLowest(root, &out);
  return out;
}

StatusOr<std::vector<AtomicQueryPart>> DecomposeSimplifiedPart(
    const SimplifiedQueryPart& part, const DnfOptions& options) {
  if (part.scans.empty()) {
    return Status::InvalidArgument("query part contains no relations");
  }
  // §2.1 canonical renaming, scoped to this part: the first occurrence of
  // a table keeps its name, later occurrences become "name#k".
  std::unordered_map<std::string, std::string> alias_to_canonical;
  std::unordered_map<std::string, int> occurrence;
  std::vector<std::string> relation_names;
  relation_names.reserve(part.scans.size());
  for (const auto& [alias, table] : part.scans) {
    std::string table_lower = ToLower(table);
    int n = ++occurrence[table_lower];
    std::string canonical =
        n == 1 ? table_lower : table_lower + "#" + std::to_string(n);
    alias_to_canonical[ToLower(alias)] = canonical;
    relation_names.push_back(std::move(canonical));
  }
  RelationSet relations(std::move(relation_names));

  // Combine conjuncts, canonicalize qualifiers, expand to DNF.
  ExprPtr combined = Expr::MakeAnd(part.conjuncts);
  ERQ_ASSIGN_OR_RETURN(ExprPtr renamed,
                       RewriteQualifiers(combined, alias_to_canonical));
  ERQ_ASSIGN_OR_RETURN(Dnf dnf, ExprToDnf(renamed, options));

  std::vector<AtomicQueryPart> out;
  out.reserve(dnf.size());
  for (Conjunction& conj : dnf) {
    out.emplace_back(relations, std::move(conj));
  }
  return out;
}

StatusOr<std::vector<AtomicQueryPart>> DecomposePhysicalPart(
    const PhysOpPtr& part, const DnfOptions& options) {
  ERQ_ASSIGN_OR_RETURN(SimplifiedQueryPart simplified,
                       SimplifyPhysicalPart(part));
  return DecomposeSimplifiedPart(simplified, options);
}

StatusOr<std::vector<AtomicQueryPart>> DecomposeLogicalPart(
    const LogicalOpPtr& part, const DnfOptions& options) {
  ERQ_ASSIGN_OR_RETURN(SimplifiedQueryPart simplified,
                       SimplifyLogicalPart(part));
  return DecomposeSimplifiedPart(simplified, options);
}

}  // namespace erq
