#include "core/query_api.h"

#include <cstdio>

#include "common/json.h"
#include "types/date.h"

namespace erq {

namespace {

/// JSON rendering of one scalar value: NULL -> null, numbers -> numbers,
/// strings -> quoted raw text (no SQL quotes), dates -> "YYYY-MM-DD".
std::string ValueToJson(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return "null";
    case DataType::kInt64:
      return std::to_string(v.AsInt());
    case DataType::kDouble:
      return JsonNumber(v.AsDouble());
    case DataType::kString:
      return JsonQuote(v.AsString());
    case DataType::kDate:
      return JsonQuote(DateToString(v.AsDate()));
  }
  return "null";
}

}  // namespace

QueryRequest QueryRequest::Sql(std::string sql) {
  QueryRequest out;
  out.sql = std::move(sql);
  return out;
}

QueryRequest QueryRequest::Parsed(const Statement* statement) {
  QueryRequest out;
  out.statement = statement;
  return out;
}

QueryRequest QueryRequest::Batch(std::vector<std::string> sqls) {
  QueryRequest out;
  out.batch = std::move(sqls);
  return out;
}

Status QueryRequest::Validate() const {
  const int forms = (sql.empty() ? 0 : 1) + (statement != nullptr ? 1 : 0) +
                    (batch.empty() ? 0 : 1);
  if (forms == 0) {
    return Status::InvalidArgument(
        "QueryRequest needs exactly one input form: sql, statement, or "
        "batch (all three are empty)");
  }
  if (forms > 1) {
    return Status::InvalidArgument(
        "QueryRequest must set exactly one of sql / statement / batch");
  }
  switch (explain) {
    case ExplainVerbosity::kNone:
    case ExplainVerbosity::kSummary:
    case ExplainVerbosity::kFull:
      break;
    default:
      return Status::InvalidArgument(
          "QueryRequest.explain is not a known ExplainVerbosity");
  }
  return Status::OK();
}

QueryResponse QueryResponse::FromOutcome(const QueryOutcome& outcome,
                                         const QueryRequest& request) {
  QueryResponse out;
  out.detected_empty = outcome.detected_empty;
  out.executed = outcome.executed;
  out.result_empty = outcome.result_empty;
  out.high_cost = outcome.high_cost;
  out.result_rows = outcome.result_rows;
  out.aqps_recorded = outcome.aqps_recorded;
  out.branches_pruned = outcome.branches_pruned;
  out.partitions_scanned = outcome.partitions_scanned;
  out.partitions_pruned = outcome.partitions_pruned;
  out.partition_aqps_recorded = outcome.partition_aqps_recorded;
  out.reused_subtrees = outcome.reused_subtrees;
  out.reuse_rows_served = outcome.reuse_rows_served;
  out.intermediates_harvested = outcome.intermediates_harvested;
  out.estimated_cost = outcome.estimated_cost;
  out.timings = outcome.timings;
  for (const BoundColumn& c : outcome.result.layout.columns()) {
    out.columns.push_back(c.column);
  }
  const size_t keep =
      outcome.result.rows.size() < request.row_limit ? outcome.result.rows.size()
                                                     : request.row_limit;
  out.rows.assign(outcome.result.rows.begin(),
                  outcome.result.rows.begin() +
                      static_cast<std::ptrdiff_t>(keep));
  out.rows_truncated = keep < outcome.result.rows.size();
  if (request.explain == ExplainVerbosity::kFull && outcome.plan != nullptr) {
    out.plan_text = outcome.plan->ToString();
  }
  if (request.explain != ExplainVerbosity::kNone &&
      outcome.explanation.has_value()) {
    out.empty_causes = outcome.explanation->minimal_causes;
  }
  return out;
}

QueryResponse QueryResponse::FromStatus(const Status& status) {
  QueryResponse out;
  out.status = status;
  return out;
}

QueryResponse QueryResponse::FromResult(const StatusOr<QueryOutcome>& result,
                                        const QueryRequest& request) {
  if (!result.ok()) return FromStatus(result.status());
  return FromOutcome(*result, request);
}

std::string QueryResponse::ToJson() const {
  std::string out = "{\"schema\":";
  out += JsonQuote(kSchema);
  out += ",\"status\":{\"code\":";
  out += JsonQuote(StatusCodeToString(status.code()));
  out += ",\"message\":";
  out += JsonQuote(status.message());
  out += "}";
  if (!status.ok()) {
    out += "}";
    return out;
  }
  out += ",\"outcome\":{\"detected_empty\":";
  out += detected_empty ? "true" : "false";
  out += ",\"executed\":";
  out += executed ? "true" : "false";
  out += ",\"result_empty\":";
  out += result_empty ? "true" : "false";
  out += ",\"high_cost\":";
  out += high_cost ? "true" : "false";
  out += ",\"result_rows\":" + std::to_string(result_rows);
  out += ",\"returned_rows\":" + std::to_string(rows.size());
  out += ",\"rows_truncated\":";
  out += rows_truncated ? "true" : "false";
  out += ",\"aqps_recorded\":" + std::to_string(aqps_recorded);
  out += ",\"branches_pruned\":" + std::to_string(branches_pruned);
  out += ",\"partitions_scanned\":" + std::to_string(partitions_scanned);
  out += ",\"partitions_pruned\":" + std::to_string(partitions_pruned);
  out += ",\"partition_aqps_recorded\":" +
         std::to_string(partition_aqps_recorded);
  out += ",\"reused_subtrees\":" + std::to_string(reused_subtrees);
  out += ",\"reuse_rows_served\":" + std::to_string(reuse_rows_served);
  out += ",\"intermediates_harvested\":" +
         std::to_string(intermediates_harvested);
  out += ",\"estimated_cost\":" + JsonNumber(estimated_cost);
  out += "},\"timings\":{";
  out += "\"parse_seconds\":" + JsonNumber(timings.parse_seconds);
  out += ",\"plan_seconds\":" + JsonNumber(timings.plan_seconds);
  out += ",\"optimize_seconds\":" + JsonNumber(timings.optimize_seconds);
  out += ",\"gate_seconds\":" + JsonNumber(timings.gate_seconds);
  out += ",\"check_seconds\":" + JsonNumber(timings.check_seconds);
  out += ",\"execute_seconds\":" + JsonNumber(timings.execute_seconds);
  out += ",\"record_seconds\":" + JsonNumber(timings.record_seconds);
  out += ",\"total_seconds\":" + JsonNumber(timings.total_seconds);
  out += "},\"columns\":[";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ',';
    out += JsonQuote(columns[i]);
  }
  out += "],\"rows\":[";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out += ',';
    out += '[';
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += ',';
      out += ValueToJson(rows[r][c]);
    }
    out += ']';
  }
  out += ']';
  if (!plan_text.empty()) {
    out += ",\"plan\":" + JsonQuote(plan_text);
  }
  if (!empty_causes.empty()) {
    out += ",\"empty_causes\":[";
    for (size_t i = 0; i < empty_causes.size(); ++i) {
      if (i > 0) out += ',';
      out += JsonQuote(empty_causes[i]);
    }
    out += ']';
  }
  out += '}';
  return out;
}

std::string QueryResponse::ToText() const {
  if (!status.ok()) {
    return "error: " + status.ToString();
  }
  char buf[160];
  std::string out;
  if (detected_empty) {
    std::snprintf(buf, sizeof(buf),
                  "detected empty via C_aqp (estimated cost %.1f, execution "
                  "skipped)",
                  estimated_cost);
  } else if (executed) {
    std::snprintf(buf, sizeof(buf),
                  "executed: %zu row%s (estimated cost %.1f%s)", result_rows,
                  result_rows == 1 ? "" : "s", estimated_cost,
                  high_cost ? ", high-cost" : "");
  } else {
    std::snprintf(buf, sizeof(buf), "not executed (estimated cost %.1f)",
                  estimated_cost);
  }
  out += buf;
  if (branches_pruned > 0) {
    std::snprintf(buf, sizeof(buf), "; %zu set-op branch(es) pruned",
                  branches_pruned);
    out += buf;
  }
  if (aqps_recorded > 0) {
    std::snprintf(buf, sizeof(buf), "; %zu atomic query part(s) recorded",
                  aqps_recorded);
    out += buf;
  }
  if (partitions_pruned > 0) {
    std::snprintf(buf, sizeof(buf),
                  "; partitions scanned=%zu pruned=%zu", partitions_scanned,
                  partitions_pruned);
    out += buf;
  }
  if (partition_aqps_recorded > 0) {
    std::snprintf(buf, sizeof(buf), "; %zu partition part(s) recorded",
                  partition_aqps_recorded);
    out += buf;
  }
  if (reused_subtrees > 0) {
    std::snprintf(buf, sizeof(buf),
                  "; %zu subtree(s) reused (%zu cached row(s) served)",
                  reused_subtrees, reuse_rows_served);
    out += buf;
  }
  if (intermediates_harvested > 0) {
    std::snprintf(buf, sizeof(buf), "; %zu intermediate(s) harvested",
                  intermediates_harvested);
    out += buf;
  }
  if (!rows.empty() && !columns.empty()) {
    out += '\n';
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c > 0) out += " | ";
      out += columns[c];
    }
    for (const Row& row : rows) {
      out += '\n';
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out += " | ";
        out += row[c].ToString();
      }
    }
    if (rows_truncated) {
      std::snprintf(buf, sizeof(buf), "\n... (%zu rows total)", result_rows);
      out += buf;
    }
  }
  out += "\ntimings: " + timings.ToString();
  if (!plan_text.empty()) {
    out += "\n" + plan_text;
  }
  for (const std::string& cause : empty_causes) {
    out += "\nminimal cause: " + cause;
  }
  return out;
}

}  // namespace erq
