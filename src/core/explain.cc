#include "core/explain.h"

#include "core/decompose.h"
#include "core/simplify.h"

namespace erq {

namespace {

/// Total rows read by the scans under `node` (input volume, for context).
/// CachedResultScan counts too: its rows feed the operators above it
/// even though no base table was touched.
int64_t InputRows(const PhysicalOperator& node) {
  if (node.kind == PhysOpKind::kTableScan ||
      node.kind == PhysOpKind::kIndexScan ||
      node.kind == PhysOpKind::kCachedResultScan) {
    return node.actual_rows >= 0 ? node.actual_rows : 0;
  }
  int64_t total = 0;
  for (const PhysOpPtr& c : node.children) total += InputRows(*c);
  return total;
}

std::string RenderPart(const PhysOpPtr& part) {
  auto simplified = SimplifyPhysicalPart(part);
  std::string algebra;
  if (simplified.ok()) {
    std::string cond;
    for (size_t i = 0; i < simplified->conjuncts.size(); ++i) {
      if (i > 0) cond += " AND ";
      cond += simplified->conjuncts[i]->ToString();
    }
    std::string rels;
    for (size_t i = 0; i < simplified->scans.size(); ++i) {
      if (i > 0) rels += " x ";
      rels += simplified->scans[i].second;
      if (simplified->scans[i].first != simplified->scans[i].second) {
        rels += " " + simplified->scans[i].first;
      }
    }
    algebra = cond.empty() ? rels : "sigma[" + cond + "](" + rels + ")";
  } else {
    algebra = PhysOpKindToString(part->kind);
  }
  return algebra + " produced 0 rows out of " +
         std::to_string(InputRows(*part)) + " scanned";
}

}  // namespace

std::string EmptyResultExplanation::ToString() const {
  std::string out = "The query returned an empty result.\n\nExecuted plan "
                    "(with output cardinalities):\n";
  out += annotated_plan;
  out += "\nMinimal zero result(s):\n";
  for (const std::string& cause : minimal_causes) {
    out += "  * " + cause + "\n";
  }
  return out;
}

StatusOr<EmptyResultExplanation> ExplainEmptyResult(const PhysOpPtr& root) {
  if (root == nullptr || root->actual_rows < 0) {
    return Status::InvalidArgument(
        "plan has not been executed (no actual cardinalities)");
  }
  if (root->actual_rows != 0) {
    return Status::InvalidArgument("the query result was not empty");
  }
  EmptyResultExplanation out;
  out.annotated_plan = root->ToString();
  for (const PhysOpPtr& part : FindLowestEmptyParts(root)) {
    out.minimal_causes.push_back(RenderPart(part));
  }
  if (out.minimal_causes.empty()) {
    out.minimal_causes.push_back(
        "no SPJ sub-expression isolated; the whole query is the minimal "
        "zero result");
  }
  return out;
}

}  // namespace erq
