#include "core/detector.h"

#include "common/metrics.h"
#include "core/update_filter.h"

namespace erq {

namespace {

/// Detector instruments, resolved once (see metrics.h). Counted at the
/// public entry points only, so recursion and PrunePlan's internal probes
/// don't inflate the per-query numbers.
struct DetectorMetrics {
  Counter* checks;
  Counter* parts_checked;
  Counter* provably_empty;
  Counter* record_calls;
  Counter* parts_recorded;

  static const DetectorMetrics& Get() {
    static const DetectorMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return DetectorMetrics{
          r.GetCounter("erq.detector.checks"),
          r.GetCounter("erq.detector.parts_checked"),
          r.GetCounter("erq.detector.provably_empty"),
          r.GetCounter("erq.detector.record_calls"),
          r.GetCounter("erq.detector.parts_recorded"),
      };
    }();
    return m;
  }
};

}  // namespace

CheckResult EmptyResultDetector::CheckEmpty(const LogicalOpPtr& root) {
  CheckResult result = CheckEmptyImpl(root);
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  metrics.checks->Increment();
  metrics.parts_checked->Increment(result.parts_checked);
  if (result.provably_empty) metrics.provably_empty->Increment();
  return result;
}

CheckResult EmptyResultDetector::CheckEmptyImpl(const LogicalOpPtr& root) {
  CheckResult result;
  if (root == nullptr) return result;
  switch (root->kind) {
    case LogicalOpKind::kProject:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kDistinct:
      // No influence on emptiness.
      return CheckEmptyImpl(root->children[0]);
    case LogicalOpKind::kAggregate:
      // §2.5(1): a grouped aggregate is empty iff its input is; a scalar
      // aggregate always emits one row (count(∅)=0), so it is never empty.
      if (root->group_by.empty()) return result;
      return CheckEmptyImpl(root->children[0]);
    case LogicalOpKind::kUnion: {
      // §2.5(2): empty iff both branches are provably empty.
      CheckResult left = CheckEmptyImpl(root->children[0]);
      result.parts_checked += left.parts_checked;
      if (!left.provably_empty) return result;
      CheckResult right = CheckEmptyImpl(root->children[1]);
      result.parts_checked += right.parts_checked;
      result.provably_empty = right.provably_empty;
      return result;
    }
    case LogicalOpKind::kExcept: {
      // §2.5(4): empty if the left branch is provably empty.
      CheckResult left = CheckEmptyImpl(root->children[0]);
      result.parts_checked += left.parts_checked;
      result.provably_empty = left.provably_empty;
      return result;
    }
    case LogicalOpKind::kOuterJoin: {
      // §2.5(3): a left outer join is empty iff its left input is.
      CheckResult left = CheckEmptyImpl(root->children[0]);
      result.parts_checked += left.parts_checked;
      result.provably_empty = left.provably_empty;
      return result;
    }
    case LogicalOpKind::kScan:
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kJoin:
    case LogicalOpKind::kSemiJoin: {
      auto simplified = SimplifyLogicalPart(root);
      if (!simplified.ok()) return result;
      auto parts = DecomposeSimplifiedPart(*simplified, config_.dnf);
      if (!parts.ok()) return result;  // e.g. DNF blow-up => just execute
      result.parts_checked = parts->size();
      // A query whose DNF is FALSE (no disjuncts) is trivially empty.
      for (const AtomicQueryPart& part : *parts) {
        if (part.ProvablyUnsatisfiable()) continue;
        if (!cache_.CoveredBy(part)) return result;
      }
      result.provably_empty = true;
      return result;
    }
  }
  return result;
}

size_t EmptyResultDetector::RecordEmpty(const PhysOpPtr& executed_root) {
  size_t inserted = 0;
  for (const PhysOpPtr& part : FindLowestEmptyParts(executed_root)) {
    auto aqps = DecomposePhysicalPart(part, config_.dnf);
    if (!aqps.ok()) continue;  // non-SPJ or too complex: skip this part
    for (const AtomicQueryPart& aqp : *aqps) {
      if (aqp.ProvablyUnsatisfiable()) continue;  // no information content
      cache_.Insert(aqp);
      ++inserted;
    }
  }
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  metrics.record_calls->Increment();
  metrics.parts_recorded->Increment(inserted);
  return inserted;
}

LogicalOpPtr EmptyResultDetector::PrunePlan(const LogicalOpPtr& root,
                                            size_t* pruned) {
  if (root == nullptr) return root;
  switch (root->kind) {
    case LogicalOpKind::kUnion: {
      LogicalOpPtr left = PrunePlan(root->children[0], pruned);
      LogicalOpPtr right = PrunePlan(root->children[1], pruned);
      bool left_empty = CheckEmptyImpl(left).provably_empty;
      bool right_empty = CheckEmptyImpl(right).provably_empty;
      if (left_empty && right_empty) {
        // Fully detected; keep the (cheap) structure — the caller's
        // CheckEmpty will skip execution entirely.
        return LogicalOperator::Union(std::move(left), std::move(right),
                                      root->all);
      }
      if (left_empty || right_empty) {
        if (pruned != nullptr) ++*pruned;
        LogicalOpPtr survivor = left_empty ? std::move(right)
                                           : std::move(left);
        // UNION (without ALL) also deduplicates the surviving branch.
        return root->all ? survivor
                         : LogicalOperator::Distinct(std::move(survivor));
      }
      return LogicalOperator::Union(std::move(left), std::move(right),
                                    root->all);
    }
    case LogicalOpKind::kExcept: {
      LogicalOpPtr left = PrunePlan(root->children[0], pruned);
      const LogicalOpPtr& right = root->children[1];
      if (CheckEmptyImpl(right).provably_empty) {
        if (pruned != nullptr) ++*pruned;
        // EXCEPT (without ALL) deduplicates its output.
        return root->all ? left : LogicalOperator::Distinct(std::move(left));
      }
      return LogicalOperator::Except(std::move(left), right, root->all);
    }
    case LogicalOpKind::kProject:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kDistinct:
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kAggregate:
    case LogicalOpKind::kOuterJoin: {
      // Set operations may be nested below; rebuild only when needed.
      bool changed = false;
      std::vector<LogicalOpPtr> children;
      children.reserve(root->children.size());
      for (const LogicalOpPtr& c : root->children) {
        LogicalOpPtr pc = PrunePlan(c, pruned);
        if (pc != c) changed = true;
        children.push_back(std::move(pc));
      }
      if (!changed) return root;
      auto copy = std::make_shared<LogicalOperator>(*root);
      copy->children = std::move(children);
      return copy;
    }
    default:
      return root;
  }
}

void EmptyResultDetector::OnRelationUpdated(const std::string& table_name) {
  if (config_.invalidation == InvalidationMode::kDropAll) {
    // DropIf (rather than Clear) so the invalidation counter reflects the
    // cost of the paper's drop-everything strategy.
    cache_.DropIf([](const AtomicQueryPart&) { return true; });
  } else {
    // kDropTouched and the conservative fallback of kFilterIrrelevant
    // (no row information available).
    cache_.InvalidateRelation(table_name);
  }
}

size_t EmptyResultDetector::OnRelationInserted(const std::string& table_name,
                                               const Schema& schema,
                                               const std::vector<Row>& rows) {
  if (config_.invalidation != InvalidationMode::kFilterIrrelevant) {
    size_t before = cache_.size();
    OnRelationUpdated(table_name);
    return before - cache_.size();
  }
  return cache_.DropIf([&](const AtomicQueryPart& part) {
    return InsertsAreRelevant(part, table_name, schema, rows);
  });
}

void EmptyResultDetector::OnRelationDeleted(const std::string& table_name) {
  if (config_.invalidation == InvalidationMode::kFilterIrrelevant) {
    return;  // shrinking inputs keeps empty outputs empty
  }
  OnRelationUpdated(table_name);
}

}  // namespace erq
