#include "core/detector.h"

#include <unordered_map>

#include "common/metrics.h"
#include "common/string_util.h"
#include "core/update_filter.h"

namespace erq {

namespace {

/// Detector instruments, resolved once (see metrics.h). Counted at the
/// public entry points only, so recursion and PrunePlan's internal probes
/// don't inflate the per-query numbers.
struct DetectorMetrics {
  Counter* checks;
  Counter* parts_checked;
  Counter* provably_empty;
  Counter* record_calls;
  Counter* parts_recorded;
  Counter* partition_hits;
  Counter* partition_recorded;
  Counter* partition_invalidated;

  static const DetectorMetrics& Get() {
    static const DetectorMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return DetectorMetrics{
          r.GetCounter("erq.detector.checks"),
          r.GetCounter("erq.detector.parts_checked"),
          r.GetCounter("erq.detector.provably_empty"),
          r.GetCounter("erq.detector.record_calls"),
          r.GetCounter("erq.detector.parts_recorded"),
          r.GetCounter("erq.caqp.partition.hits"),
          r.GetCounter("erq.caqp.partition.recorded"),
          r.GetCounter("erq.caqp.partition.invalidated"),
      };
    }();
    return m;
  }
};

/// True when `name` is a canonical occurrence of `base` ("base" itself or
/// a self-join rename "base#k").
bool IsOccurrence(const std::string& name, const std::string& base) {
  return name == base || StartsWith(name, base + "#");
}

/// The partition-tagged probe/record part for (base, partition,
/// condition): relation set {"base@k"}, condition terms renamed onto the
/// tagged occurrence so Theorem 2's column identities line up.
AtomicQueryPart MakePartitionPart(const std::string& base, size_t partition,
                                  const Conjunction& condition) {
  std::string tagged = MakePartitionName(base, partition);
  std::unordered_map<std::string, std::string> rename{{base, tagged}};
  return AtomicQueryPart(RelationSet({tagged}),
                         condition.RenameRelations(rename));
}

}  // namespace

CheckResult EmptyResultDetector::CheckEmpty(const LogicalOpPtr& root) {
  CheckResult result = CheckEmptyImpl(root);
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  metrics.checks->Increment();
  metrics.parts_checked->Increment(result.parts_checked);
  if (result.provably_empty) metrics.provably_empty->Increment();
  return result;
}

std::vector<CheckResult> EmptyResultDetector::CheckEmptyBatch(
    const std::vector<LogicalOpPtr>& roots) {
  std::vector<BatchLeaf> leaves;
  std::vector<const AtomicQueryPart*> probes;
  for (const LogicalOpPtr& root : roots) {
    CollectLeaves(root, &leaves, &probes);
  }
  std::vector<uint8_t> covered = cache_.CoveredByBatch(probes);
  std::vector<CheckResult> out;
  out.reserve(roots.size());
  size_t next_leaf = 0;
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  for (const LogicalOpPtr& root : roots) {
    CheckResult result = EvaluateBatch(root, leaves, &next_leaf, covered);
    metrics.checks->Increment();
    metrics.parts_checked->Increment(result.parts_checked);
    if (result.provably_empty) metrics.provably_empty->Increment();
    out.push_back(result);
  }
  return out;
}

void EmptyResultDetector::CollectLeaves(
    const LogicalOpPtr& root, std::vector<BatchLeaf>* leaves,
    std::vector<const AtomicQueryPart*>* probes) {
  if (root == nullptr) return;
  switch (root->kind) {
    case LogicalOpKind::kProject:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kDistinct:
      CollectLeaves(root->children[0], leaves, probes);
      return;
    case LogicalOpKind::kAggregate:
      // Scalar aggregates are never empty: EvaluateBatch returns without
      // descending, so nothing below them may be collected either.
      if (root->group_by.empty()) return;
      CollectLeaves(root->children[0], leaves, probes);
      return;
    case LogicalOpKind::kUnion:
      // Unlike CheckEmptyImpl there is no short-circuit on the left
      // branch: both sides' parts join the batch probe.
      CollectLeaves(root->children[0], leaves, probes);
      CollectLeaves(root->children[1], leaves, probes);
      return;
    case LogicalOpKind::kExcept:
    case LogicalOpKind::kOuterJoin:
      // Only the left input decides emptiness (§2.5 cases (4) and (3)).
      CollectLeaves(root->children[0], leaves, probes);
      return;
    case LogicalOpKind::kScan:
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kJoin:
    case LogicalOpKind::kSemiJoin: {
      BatchLeaf leaf;
      auto simplified = SimplifyLogicalPart(root);
      if (simplified.ok()) {
        auto parts = DecomposeSimplifiedPart(*simplified, config_.dnf);
        if (parts.ok()) {
          leaf.decomposed = true;
          leaf.parts = std::move(*parts);
        }
      }
      leaves->push_back(std::move(leaf));
      // Pointers are taken after the leaf reaches its final home: moving
      // the vector's heap buffer on growth does not move part storage.
      BatchLeaf& placed = leaves->back();
      placed.probe_index.reserve(placed.parts.size());
      for (const AtomicQueryPart& part : placed.parts) {
        if (part.ProvablyUnsatisfiable()) {
          placed.probe_index.push_back(BatchLeaf::kNotProbed);
        } else {
          placed.probe_index.push_back(probes->size());
          probes->push_back(&part);
        }
      }
      return;
    }
  }
}

CheckResult EmptyResultDetector::EvaluateBatch(
    const LogicalOpPtr& root, const std::vector<BatchLeaf>& leaves,
    size_t* next_leaf, const std::vector<uint8_t>& covered) {
  CheckResult result;
  if (root == nullptr) return result;
  switch (root->kind) {
    case LogicalOpKind::kProject:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kDistinct:
      return EvaluateBatch(root->children[0], leaves, next_leaf, covered);
    case LogicalOpKind::kAggregate:
      if (root->group_by.empty()) return result;
      return EvaluateBatch(root->children[0], leaves, next_leaf, covered);
    case LogicalOpKind::kUnion: {
      CheckResult left =
          EvaluateBatch(root->children[0], leaves, next_leaf, covered);
      CheckResult right =
          EvaluateBatch(root->children[1], leaves, next_leaf, covered);
      result.parts_checked = left.parts_checked + right.parts_checked;
      result.provably_empty = left.provably_empty && right.provably_empty;
      return result;
    }
    case LogicalOpKind::kExcept:
    case LogicalOpKind::kOuterJoin:
      return EvaluateBatch(root->children[0], leaves, next_leaf, covered);
    case LogicalOpKind::kScan:
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kJoin:
    case LogicalOpKind::kSemiJoin: {
      const BatchLeaf& leaf = leaves[(*next_leaf)++];
      result.parts_checked = leaf.parts.size();
      if (!leaf.decomposed) return result;
      for (size_t i = 0; i < leaf.parts.size(); ++i) {
        size_t probe = leaf.probe_index[i];
        if (probe == BatchLeaf::kNotProbed) continue;  // unsat: empty part
        if (!covered[probe]) return result;
      }
      result.provably_empty = true;
      return result;
    }
  }
  return result;
}

CheckResult EmptyResultDetector::CheckEmptyImpl(const LogicalOpPtr& root) {
  CheckResult result;
  if (root == nullptr) return result;
  switch (root->kind) {
    case LogicalOpKind::kProject:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kDistinct:
      // No influence on emptiness.
      return CheckEmptyImpl(root->children[0]);
    case LogicalOpKind::kAggregate:
      // §2.5(1): a grouped aggregate is empty iff its input is; a scalar
      // aggregate always emits one row (count(∅)=0), so it is never empty.
      if (root->group_by.empty()) return result;
      return CheckEmptyImpl(root->children[0]);
    case LogicalOpKind::kUnion: {
      // §2.5(2): empty iff both branches are provably empty.
      CheckResult left = CheckEmptyImpl(root->children[0]);
      result.parts_checked += left.parts_checked;
      if (!left.provably_empty) return result;
      CheckResult right = CheckEmptyImpl(root->children[1]);
      result.parts_checked += right.parts_checked;
      result.provably_empty = right.provably_empty;
      return result;
    }
    case LogicalOpKind::kExcept: {
      // §2.5(4): empty if the left branch is provably empty.
      CheckResult left = CheckEmptyImpl(root->children[0]);
      result.parts_checked += left.parts_checked;
      result.provably_empty = left.provably_empty;
      return result;
    }
    case LogicalOpKind::kOuterJoin: {
      // §2.5(3): a left outer join is empty iff its left input is.
      CheckResult left = CheckEmptyImpl(root->children[0]);
      result.parts_checked += left.parts_checked;
      result.provably_empty = left.provably_empty;
      return result;
    }
    case LogicalOpKind::kScan:
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kJoin:
    case LogicalOpKind::kSemiJoin: {
      auto simplified = SimplifyLogicalPart(root);
      if (!simplified.ok()) return result;
      auto parts = DecomposeSimplifiedPart(*simplified, config_.dnf);
      if (!parts.ok()) return result;  // e.g. DNF blow-up => just execute
      result.parts_checked = parts->size();
      // A query whose DNF is FALSE (no disjuncts) is trivially empty.
      for (const AtomicQueryPart& part : *parts) {
        if (part.ProvablyUnsatisfiable()) continue;
        if (!cache_.CoveredBy(part)) return result;
      }
      result.provably_empty = true;
      return result;
    }
  }
  return result;
}

size_t EmptyResultDetector::RecordEmpty(const PhysOpPtr& executed_root) {
  size_t inserted = 0;
  for (const PhysOpPtr& part : FindLowestEmptyParts(executed_root)) {
    auto aqps = DecomposePhysicalPart(part, config_.dnf);
    if (!aqps.ok()) continue;  // non-SPJ or too complex: skip this part
    for (const AtomicQueryPart& aqp : *aqps) {
      if (aqp.ProvablyUnsatisfiable()) continue;  // no information content
      cache_.Insert(aqp);
      ++inserted;
    }
  }
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  metrics.record_calls->Increment();
  metrics.parts_recorded->Increment(inserted);
  return inserted;
}

bool EmptyResultDetector::PartitionCovered(const std::string& base,
                                           size_t partition,
                                           const Conjunction& condition) {
  AtomicQueryPart probe =
      MakePartitionPart(ToLower(base), partition, condition);
  if (!cache_.CoveredBy(probe)) return false;
  DetectorMetrics::Get().partition_hits->Increment();
  return true;
}

size_t EmptyResultDetector::RecordPartitionEmpties(
    const PhysOpPtr& executed_root) {
  size_t inserted = 0;
  std::vector<const PhysicalOperator*> stack = {executed_root.get()};
  while (!stack.empty()) {
    const PhysicalOperator* op = stack.back();
    stack.pop_back();
    if (op == nullptr) continue;
    for (const PhysOpPtr& child : op->children) stack.push_back(child.get());
    if (op->kind != PhysOpKind::kTableScan || !op->has_scan_condition ||
        op->partitions_scanned < 0) {
      continue;
    }
    std::string base = ToLower(op->table_name);
    for (const PartitionScanStat& stat : op->partition_stats) {
      if (stat.matches != 0) continue;
      AtomicQueryPart part =
          MakePartitionPart(base, stat.partition, op->scan_condition);
      // Unsatisfiable conditions carry no information (and would be
      // skipped by the whole-query harvest too).
      if (part.ProvablyUnsatisfiable()) continue;
      cache_.Insert(part);
      ++inserted;
    }
  }
  if (inserted > 0) {
    DetectorMetrics::Get().partition_recorded->Increment(inserted);
  }
  return inserted;
}

LogicalOpPtr EmptyResultDetector::PrunePlan(const LogicalOpPtr& root,
                                            size_t* pruned) {
  if (root == nullptr) return root;
  switch (root->kind) {
    case LogicalOpKind::kUnion: {
      LogicalOpPtr left = PrunePlan(root->children[0], pruned);
      LogicalOpPtr right = PrunePlan(root->children[1], pruned);
      bool left_empty = CheckEmptyImpl(left).provably_empty;
      bool right_empty = CheckEmptyImpl(right).provably_empty;
      if (left_empty && right_empty) {
        // Fully detected; keep the (cheap) structure — the caller's
        // CheckEmpty will skip execution entirely.
        return LogicalOperator::Union(std::move(left), std::move(right),
                                      root->all);
      }
      if (left_empty || right_empty) {
        if (pruned != nullptr) ++*pruned;
        LogicalOpPtr survivor = left_empty ? std::move(right)
                                           : std::move(left);
        // UNION (without ALL) also deduplicates the surviving branch.
        return root->all ? survivor
                         : LogicalOperator::Distinct(std::move(survivor));
      }
      return LogicalOperator::Union(std::move(left), std::move(right),
                                    root->all);
    }
    case LogicalOpKind::kExcept: {
      LogicalOpPtr left = PrunePlan(root->children[0], pruned);
      const LogicalOpPtr& right = root->children[1];
      if (CheckEmptyImpl(right).provably_empty) {
        if (pruned != nullptr) ++*pruned;
        // EXCEPT (without ALL) deduplicates its output.
        return root->all ? left : LogicalOperator::Distinct(std::move(left));
      }
      return LogicalOperator::Except(std::move(left), right, root->all);
    }
    case LogicalOpKind::kProject:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kDistinct:
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kAggregate:
    case LogicalOpKind::kOuterJoin: {
      // Set operations may be nested below; rebuild only when needed.
      bool changed = false;
      std::vector<LogicalOpPtr> children;
      children.reserve(root->children.size());
      for (const LogicalOpPtr& c : root->children) {
        LogicalOpPtr pc = PrunePlan(c, pruned);
        if (pc != c) changed = true;
        children.push_back(std::move(pc));
      }
      if (!changed) return root;
      auto copy = std::make_shared<LogicalOperator>(*root);
      copy->children = std::move(children);
      return copy;
    }
    default:
      return root;
  }
}

void EmptyResultDetector::OnRelationUpdated(const std::string& table_name) {
  if (config_.invalidation == InvalidationMode::kDropAll) {
    // DropIf (rather than Clear) so the invalidation counter reflects the
    // cost of the paper's drop-everything strategy.
    cache_.DropIf([](const AtomicQueryPart&) { return true; });
  } else {
    // kDropTouched and the conservative fallback of kFilterIrrelevant
    // (no row information available).
    cache_.InvalidateRelation(table_name);
  }
}

size_t EmptyResultDetector::OnRelationInserted(const std::string& table_name,
                                               const Schema& schema,
                                               const std::vector<Row>& rows) {
  if (config_.invalidation != InvalidationMode::kFilterIrrelevant) {
    size_t before = cache_.size();
    OnRelationUpdated(table_name);
    return before - cache_.size();
  }
  return cache_.DropIf([&](const AtomicQueryPart& part) {
    return InsertsAreRelevant(part, table_name, schema, rows);
  });
}

size_t EmptyResultDetector::OnRelationInserted(const std::string& table_name,
                                               const Schema& schema,
                                               const std::vector<Row>& rows,
                                               const PartitionScheme& scheme) {
  if (!scheme.partitioned() ||
      config_.invalidation == InvalidationMode::kDropAll) {
    return OnRelationInserted(table_name, schema, rows);
  }
  std::string base = ToLower(table_name);
  StatusOr<size_t> key = schema.IndexOf(scheme.key_column);
  if (!key.ok()) {
    // Cannot attribute rows to partitions: conservative whole-relation
    // invalidation (drops tagged and untagged parts alike).
    size_t before = cache_.size();
    cache_.InvalidateRelation(base);
    return before - cache_.size();
  }
  // Group the inserted rows by target partition. Untouched partitions keep
  // their tagged parts: partition membership is a pure function of the
  // key, so rows landing in partition k cannot un-empty partition j.
  std::vector<std::vector<Row>> by_partition(scheme.Count());
  for (const Row& row : rows) {
    size_t k =
        key.value() < row.size() ? scheme.PartitionOf(row[key.value()]) : 0;
    by_partition[k].push_back(row);
  }
  const bool filter =
      config_.invalidation == InvalidationMode::kFilterIrrelevant;
  size_t dropped = cache_.DropIf([&](const AtomicQueryPart& part) {
    for (const std::string& name : part.relations().names()) {
      std::string tag_base;
      size_t k = 0;
      if (SplitPartitionName(name, &tag_base, &k)) {
        if (!IsOccurrence(tag_base, base)) continue;
        if (k >= by_partition.size()) return true;  // stale partition tag
        if (by_partition[k].empty()) continue;      // untouched partition
        if (!filter) return true;
        if (InsertsAreRelevant(part, name, schema, by_partition[k])) {
          return true;
        }
        continue;
      }
      if (!IsOccurrence(name, base)) continue;
      if (!filter) return true;
      if (InsertsAreRelevant(part, base, schema, rows)) return true;
    }
    return false;
  });
  if (dropped > 0) {
    DetectorMetrics::Get().partition_invalidated->Increment(dropped);
  }
  return dropped;
}

void EmptyResultDetector::OnRelationDeleted(const std::string& table_name) {
  if (config_.invalidation == InvalidationMode::kFilterIrrelevant) {
    return;  // shrinking inputs keeps empty outputs empty
  }
  OnRelationUpdated(table_name);
}

}  // namespace erq
