#include "core/simplify.h"

#include <type_traits>

#include "common/string_util.h"

#include "plan/optimizer.h"

namespace erq {

std::string SimplifiedQueryPart::ToString() const {
  std::string out = "scans[";
  for (size_t i = 0; i < scans.size(); ++i) {
    if (i > 0) out += ", ";
    out += scans[i].first + ":" + scans[i].second;
  }
  out += "] where[";
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conjuncts[i]->ToString();
  }
  out += "]";
  return out;
}

namespace {

Status WalkPhysical(const PhysicalOperator& node, SimplifiedQueryPart* out);
Status WalkLogical(const LogicalOperator& node, SimplifiedQueryPart* out);

/// Splices an IN-subquery semi join into the SPJ core: a semi join is
/// emptiness-equivalent to the join (the implicit projection/dedup falls
/// to T1), so the part becomes
///   scans(left) ∪ scans(subquery core), conjuncts(left) ∪
///   conjuncts(subquery core) ∪ { operand = <subquery select column> }.
/// Requires the subquery side to be Project(single column ref) over an SPJ
/// core (Sort/Distinct skipped by T1); anything else is kNotSupported.
template <typename Node, typename Walk>
Status SpliceSemiJoinRight(const Node& right_root, const ExprPtr& operand,
                           Walk&& walk, SimplifiedQueryPart* out) {
  const Node* node = &right_root;
  while (true) {
    if constexpr (std::is_same_v<Node, PhysicalOperator>) {
      if (node->kind == PhysOpKind::kSort ||
          node->kind == PhysOpKind::kDistinct) {
        node = node->children[0].get();
        continue;
      }
      break;
    } else {
      if (node->kind == LogicalOpKind::kSort ||
          node->kind == LogicalOpKind::kDistinct) {
        node = node->children[0].get();
        continue;
      }
      break;
    }
  }
  bool is_project;
  if constexpr (std::is_same_v<Node, PhysicalOperator>) {
    is_project = node->kind == PhysOpKind::kProject;
  } else {
    is_project = node->kind == LogicalOpKind::kProject;
  }
  if (!is_project || node->items.size() != 1 ||
      node->items[0].kind != SelectItem::Kind::kExpr ||
      node->items[0].expr->kind() != Expr::Kind::kColumnRef) {
    return Status::NotSupported(
        "IN-subquery shape not decomposable (need a single projected "
        "column)");
  }
  out->conjuncts.push_back(
      Expr::MakeCompare(CompareOp::kEq, operand, node->items[0].expr));
  return walk(*node->children[0], out);
}

Status WalkPhysical(const PhysicalOperator& node, SimplifiedQueryPart* out) {
  switch (node.kind) {
    case PhysOpKind::kTableScan:
      out->scans.emplace_back(node.alias, node.table_name);
      return Status::OK();
    case PhysOpKind::kCachedResultScan:
      // A spliced reuse entry stands in for the table scan it replaced;
      // the residual Filter above it always re-applies the query's full
      // predicate over the relation (splice never consumes conjuncts),
      // so the part this walk produces is the same one the unspliced
      // plan would yield.
      out->scans.emplace_back(node.alias, node.table_name);
      return Status::OK();
    case PhysOpKind::kIndexScan: {
      // T3: table scan + selection(index condition) [+ residual].
      out->scans.emplace_back(node.alias, node.table_name);
      if (node.index_condition) out->conjuncts.push_back(node.index_condition);
      if (node.predicate) {
        std::vector<ExprPtr> cs = SplitConjuncts(node.predicate);
        out->conjuncts.insert(out->conjuncts.end(), cs.begin(), cs.end());
      }
      return Status::OK();
    }
    case PhysOpKind::kFilter: {
      std::vector<ExprPtr> cs = SplitConjuncts(node.predicate);
      out->conjuncts.insert(out->conjuncts.end(), cs.begin(), cs.end());
      return WalkPhysical(*node.children[0], out);
    }
    case PhysOpKind::kNestedLoopsJoin:
    case PhysOpKind::kHashJoin:
    case PhysOpKind::kMergeJoin: {
      // T2: only the join condition survives.
      for (size_t i = 0; i < node.left_keys.size(); ++i) {
        out->conjuncts.push_back(Expr::MakeCompare(
            CompareOp::kEq, node.left_keys[i], node.right_keys[i]));
      }
      if (node.join_condition) {
        std::vector<ExprPtr> cs = SplitConjuncts(node.join_condition);
        out->conjuncts.insert(out->conjuncts.end(), cs.begin(), cs.end());
      }
      ERQ_RETURN_IF_ERROR(WalkPhysical(*node.children[0], out));
      return WalkPhysical(*node.children[1], out);
    }
    case PhysOpKind::kSemiJoin: {
      ERQ_RETURN_IF_ERROR(WalkPhysical(*node.children[0], out));
      return SpliceSemiJoinRight(
          *node.children[1], node.left_keys[0],
          [](const PhysicalOperator& n, SimplifiedQueryPart* o) {
            return WalkPhysical(n, o);
          },
          out);
    }
    case PhysOpKind::kProject:
    case PhysOpKind::kSort:
    case PhysOpKind::kDistinct:
      // T1: no influence on emptiness.
      return WalkPhysical(*node.children[0], out);
    case PhysOpKind::kAggregate:
    case PhysOpKind::kLeftOuterJoin:
    case PhysOpKind::kUnion:
    case PhysOpKind::kExcept:
      return Status::NotSupported(
          std::string("operator is not part of an SPJ query part: ") +
          PhysOpKindToString(node.kind));
  }
  return Status::Internal("unknown physical operator kind");
}

Status WalkLogical(const LogicalOperator& node, SimplifiedQueryPart* out) {
  switch (node.kind) {
    case LogicalOpKind::kScan:
      out->scans.emplace_back(node.alias, node.table_name);
      return Status::OK();
    case LogicalOpKind::kFilter: {
      std::vector<ExprPtr> cs = SplitConjuncts(node.predicate);
      out->conjuncts.insert(out->conjuncts.end(), cs.begin(), cs.end());
      return WalkLogical(*node.children[0], out);
    }
    case LogicalOpKind::kJoin: {
      if (node.predicate) {
        std::vector<ExprPtr> cs = SplitConjuncts(node.predicate);
        out->conjuncts.insert(out->conjuncts.end(), cs.begin(), cs.end());
      }
      ERQ_RETURN_IF_ERROR(WalkLogical(*node.children[0], out));
      return WalkLogical(*node.children[1], out);
    }
    case LogicalOpKind::kSemiJoin: {
      ERQ_RETURN_IF_ERROR(WalkLogical(*node.children[0], out));
      return SpliceSemiJoinRight(
          *node.children[1], node.predicate,
          [](const LogicalOperator& n, SimplifiedQueryPart* o) {
            return WalkLogical(n, o);
          },
          out);
    }
    case LogicalOpKind::kProject:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kDistinct:
      return WalkLogical(*node.children[0], out);
    case LogicalOpKind::kAggregate:
    case LogicalOpKind::kOuterJoin:
    case LogicalOpKind::kUnion:
    case LogicalOpKind::kExcept:
      return Status::NotSupported(
          std::string("operator is not part of an SPJ query part: ") +
          LogicalOpKindToString(node.kind));
  }
  return Status::Internal("unknown logical operator kind");
}

}  // namespace

namespace {

/// Scopes spliced by semi joins may reuse an alias (e.g. the same table
/// unaliased inside and outside the subquery). The canonical renaming of
/// §2.1 is keyed by alias, so duplicated aliases are not decomposable.
Status CheckAliasCollisions(const SimplifiedQueryPart& part) {
  for (size_t i = 0; i < part.scans.size(); ++i) {
    for (size_t j = i + 1; j < part.scans.size(); ++j) {
      if (EqualsIgnoreCase(part.scans[i].first, part.scans[j].first)) {
        return Status::NotSupported("duplicate alias '" +
                                    part.scans[i].first +
                                    "' across subquery scopes");
      }
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<SimplifiedQueryPart> SimplifyPhysicalPart(const PhysOpPtr& part) {
  SimplifiedQueryPart out;
  ERQ_RETURN_IF_ERROR(WalkPhysical(*part, &out));
  ERQ_RETURN_IF_ERROR(CheckAliasCollisions(out));
  return out;
}

StatusOr<SimplifiedQueryPart> SimplifyLogicalPart(const LogicalOpPtr& part) {
  SimplifiedQueryPart out;
  ERQ_RETURN_IF_ERROR(WalkLogical(*part, &out));
  ERQ_RETURN_IF_ERROR(CheckAliasCollisions(out));
  return out;
}

}  // namespace erq
