#pragma once

/// \file
/// §2.3 decomposition: executed empty plans → atomic query parts.

#include <vector>

#include "common/statusor.h"
#include "core/atomic_query_part.h"
#include "core/simplify.h"
#include "expr/dnf.h"

namespace erq {

/// Operation O2's search: the lowest-level physical query parts whose
/// output was observed empty — nodes with actual_rows == 0 whose children
/// all produced rows. (Theorem 1 makes everything above them redundant;
/// everything below is non-empty by construction.) Nodes that were never
/// executed (actual_rows < 0, e.g. an unreached build side) are skipped.
std::vector<PhysOpPtr> FindLowestEmptyParts(const PhysOpPtr& root);

/// §2.3 steps 1+2 end to end: simplify (T1–T3), rename aliases to canonical
/// relation names (§2.1 self-join renaming, computed per part), rewrite the
/// combined selection condition to DNF, and emit one atomic query part per
/// DNF term. All returned parts share the part's full relation set R_N.
ERQ_NODISCARD StatusOr<std::vector<AtomicQueryPart>> DecomposeSimplifiedPart(
    const SimplifiedQueryPart& part, const DnfOptions& options);

/// Convenience wrapper: SimplifyPhysicalPart + DecomposeSimplifiedPart.
ERQ_NODISCARD StatusOr<std::vector<AtomicQueryPart>> DecomposePhysicalPart(
    const PhysOpPtr& part, const DnfOptions& options);
/// Convenience wrapper: SimplifyLogicalPart + DecomposeSimplifiedPart.
ERQ_NODISCARD StatusOr<std::vector<AtomicQueryPart>> DecomposeLogicalPart(
    const LogicalOpPtr& part, const DnfOptions& options);

}  // namespace erq

