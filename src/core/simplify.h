#pragma once

/// \file
/// §2.3 step 1: T1–T3 plan simplification into SimplifiedQueryPart.

#include <string>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "plan/logical_plan.h"
#include "plan/physical_plan.h"

namespace erq {

/// The simplified query part P_s of §2.3 step 1: the relational-algebra
/// content of an (SPJ) query part after the three transformations —
///   T1: drop operators with no influence on emptiness (projection, hash,
///       sort, duplicate elimination);
///   T2: physical join operators (hash / merge / nested-loops) become the
///       logical join, i.e. just their conditions;
///   T3: index scans become table scan + selection with the index
///       condition.
/// What remains is a set of base relations and a bag of selection
/// conditions — sigma_{AND conjuncts}( product of scans ).
struct SimplifiedQueryPart {
  /// (alias, table_name) per scan, in plan order.
  std::vector<std::pair<std::string, std::string>> scans;
  /// All selection/join conditions, with qualified column references.
  std::vector<ExprPtr> conjuncts;

  /// Debug rendering: sigma[conjuncts](scan x scan x ...).
  std::string ToString() const;
};

/// Applies T1–T3 to a physical SPJ subtree. Returns kNotSupported when the
/// subtree contains a non-empty-result-propagating or non-SPJ operator
/// (aggregate, union, except, outer join) — such parts are not harvested.
ERQ_NODISCARD StatusOr<SimplifiedQueryPart> SimplifyPhysicalPart(const PhysOpPtr& part);

/// The same simplification for a logical SPJ subtree (used when checking a
/// new query, §2.4, which works on the logical plan).
ERQ_NODISCARD StatusOr<SimplifiedQueryPart> SimplifyLogicalPart(const LogicalOpPtr& part);

}  // namespace erq

