#include "core/caqp_cache.h"

#include <algorithm>

#include "common/string_util.h"

namespace erq {

bool CaqpCache::CoveredBy(const AtomicQueryPart& aqp) {
  MutexLock lock(&mu_);
  ++stats_.lookups;
  RelationSignature query_sig = RelationSignature::Of(aqp.relations());
  for (Entry& entry : entries_) {
    if (entry.items.empty()) continue;
    // Stored part covers `aqp` only if its relation set is a subset of
    // aqp's (§2.4: "search in those entries of C_aqp whose relation names
    // form a subset of the relation names of P_i").
    if (enable_signatures_ && !entry.signature.MaybeSubsetOf(query_sig)) {
      continue;
    }
    if (!entry.relations.IsSubsetOf(aqp.relations())) continue;
    for (size_t slot : entry.items) {
      Item& item = slots_[slot];
      ++stats_.conditions_scanned;
      if (item.aqp.Covers(aqp)) {
        item.ref = true;
        item.used_seq = ++seq_;
        ++stats_.hits;
        return true;
      }
    }
  }
  return false;
}

void CaqpCache::Insert(const AtomicQueryPart& aqp) {
  MutexLock lock(&mu_);
  ++stats_.insert_attempts;
  if (n_max_ == 0) return;
  RelationSignature new_sig = RelationSignature::Of(aqp.relations());

  // Keep only the most general parts. First: is the new part redundant?
  for (Entry& entry : entries_) {
    if (entry.items.empty()) continue;
    if (enable_signatures_ && !entry.signature.MaybeSubsetOf(new_sig)) {
      continue;
    }
    if (!entry.relations.IsSubsetOf(aqp.relations())) continue;
    for (size_t slot : entry.items) {
      Item& item = slots_[slot];
      if (item.aqp.Covers(aqp)) {
        item.ref = true;  // the covering part proved useful again
        item.used_seq = ++seq_;
        ++stats_.skipped_covered;
        return;
      }
    }
  }

  // Second: drop stored parts that the new one covers (they live in
  // entries whose relation set is a superset of the new part's).
  for (Entry& entry : entries_) {
    if (entry.items.empty()) continue;
    if (enable_signatures_ && !new_sig.MaybeSubsetOf(entry.signature)) {
      continue;
    }
    if (!aqp.relations().IsSubsetOf(entry.relations)) continue;
    std::vector<size_t> kept;
    kept.reserve(entry.items.size());
    for (size_t slot : entry.items) {
      if (aqp.Covers(slots_[slot].aqp)) {
        slots_[slot].alive = false;
        free_slots_.push_back(slot);
        --live_;
        ++stats_.removed_covered;
      } else {
        kept.push_back(slot);
      }
    }
    entry.items = std::move(kept);
  }

  while (live_ >= n_max_) EvictOne();

  size_t entry_idx = GetOrCreateEntry(aqp.relations());
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slots_.size();
    slots_.emplace_back();
  }
  Item& item = slots_[slot];
  item.aqp = aqp;
  item.alive = true;
  item.ref = true;
  item.inserted_seq = ++seq_;
  item.used_seq = item.inserted_seq;
  item.entry_index = entry_idx;
  entries_[entry_idx].items.push_back(slot);
  ++live_;
  ++stats_.inserted;
}

void CaqpCache::EvictOne() {
  if (live_ == 0 || slots_.empty()) return;
  ++stats_.evictions;
  switch (policy_) {
    case EvictionPolicy::kClock: {
      while (true) {
        if (clock_hand_ >= slots_.size()) clock_hand_ = 0;
        Item& item = slots_[clock_hand_];
        if (item.alive) {
          if (item.ref) {
            item.ref = false;
          } else {
            RemoveItem(clock_hand_);
            ++clock_hand_;
            return;
          }
        }
        ++clock_hand_;
      }
    }
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo: {
      size_t victim = slots_.size();
      uint64_t best = ~uint64_t{0};
      for (size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].alive) continue;
        uint64_t age = policy_ == EvictionPolicy::kLru
                           ? slots_[i].used_seq
                           : slots_[i].inserted_seq;
        if (age < best) {
          best = age;
          victim = i;
        }
      }
      if (victim < slots_.size()) RemoveItem(victim);
      return;
    }
  }
}

void CaqpCache::RemoveItem(size_t slot) {
  Item& item = slots_[slot];
  Entry& entry = entries_[item.entry_index];
  entry.items.erase(std::find(entry.items.begin(), entry.items.end(), slot));
  item.alive = false;
  free_slots_.push_back(slot);
  --live_;
}

size_t CaqpCache::GetOrCreateEntry(const RelationSet& relations) {
  std::string key = relations.Key();
  auto it = entry_index_.find(key);
  if (it != entry_index_.end()) return it->second;
  Entry entry;
  entry.relations = relations;
  entry.signature = RelationSignature::Of(relations);
  entries_.push_back(std::move(entry));
  size_t idx = entries_.size() - 1;
  entry_index_.emplace(std::move(key), idx);
  return idx;
}

void CaqpCache::Clear() {
  MutexLock lock(&mu_);
  slots_.clear();
  free_slots_.clear();
  entries_.clear();
  entry_index_.clear();
  live_ = 0;
  clock_hand_ = 0;
}

void CaqpCache::InvalidateRelation(const std::string& base_name) {
  MutexLock lock(&mu_);
  std::string base = ToLower(base_name);
  std::string prefix = base + "#";
  for (Entry& entry : entries_) {
    bool mentions = false;
    for (const std::string& rel : entry.relations.names()) {
      if (rel == base || StartsWith(rel, prefix)) {
        mentions = true;
        break;
      }
    }
    if (!mentions) continue;
    for (size_t slot : entry.items) {
      slots_[slot].alive = false;
      free_slots_.push_back(slot);
      --live_;
      ++stats_.invalidation_drops;
    }
    entry.items.clear();
  }
}

size_t CaqpCache::DropIf(
    const std::function<bool(const AtomicQueryPart&)>& pred) {
  MutexLock lock(&mu_);
  size_t dropped = 0;
  for (Entry& entry : entries_) {
    std::vector<size_t> kept;
    kept.reserve(entry.items.size());
    for (size_t slot : entry.items) {
      if (pred(slots_[slot].aqp)) {
        slots_[slot].alive = false;
        free_slots_.push_back(slot);
        --live_;
        ++dropped;
        ++stats_.invalidation_drops;
      } else {
        kept.push_back(slot);
      }
    }
    entry.items = std::move(kept);
  }
  return dropped;
}

std::vector<AtomicQueryPart> CaqpCache::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<AtomicQueryPart> out;
  out.reserve(live_);
  for (const Item& item : slots_) {
    if (item.alive) out.push_back(item.aqp);
  }
  return out;
}

}  // namespace erq
