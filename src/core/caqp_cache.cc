#include "core/caqp_cache.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

#include "common/metrics.h"
#include "common/string_util.h"

namespace erq {

namespace {

constexpr std::memory_order kRelaxed = std::memory_order_relaxed;
constexpr std::memory_order kAcquire = std::memory_order_acquire;
constexpr std::memory_order kAcqRel = std::memory_order_acq_rel;

/// Global C_aqp instruments, resolved once (see metrics.h). These mirror
/// the per-instance AtomicCounters into the process-wide registry,
/// aggregating across every live cache; per-instance numbers remain
/// available via stats_snapshot(). `erq.caqp.size` tracks live parts by
/// delta (inserts minus removals; the dtor subtracts what remains).
/// `erq.caqp.epoch.pending` and `erq.caqp.shard_imbalance` are sampled
/// gauges, refreshed whenever some instance's stats_snapshot() runs.
struct CaqpMetrics {
  Counter* lookups;
  Counter* hits;
  Counter* misses;
  Counter* conditions_scanned;
  Counter* insert_attempts;
  Counter* inserted;
  Counter* skipped_covered;
  Counter* removed_covered;
  Counter* evictions;
  Counter* invalidation_drops;
  Counter* postings_scanned;
  Counter* candidate_entries;
  Counter* signature_rejects;
  Counter* epoch_retired;
  Gauge* size;
  Gauge* epoch_pending;
  Gauge* shard_imbalance;

  static const CaqpMetrics& Get() {
    static const CaqpMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return CaqpMetrics{
          r.GetCounter("erq.caqp.lookups"),
          r.GetCounter("erq.caqp.hits"),
          r.GetCounter("erq.caqp.misses"),
          r.GetCounter("erq.caqp.conditions_scanned"),
          r.GetCounter("erq.caqp.insert_attempts"),
          r.GetCounter("erq.caqp.inserted"),
          r.GetCounter("erq.caqp.skipped_covered"),
          r.GetCounter("erq.caqp.removed_covered"),
          r.GetCounter("erq.caqp.evictions"),
          r.GetCounter("erq.caqp.invalidation_drops"),
          r.GetCounter("erq.caqp.postings_scanned"),
          r.GetCounter("erq.caqp.candidate_entries"),
          r.GetCounter("erq.caqp.signature_rejects"),
          r.GetCounter("erq.caqp.epoch.retired"),
          r.GetGauge("erq.caqp.size"),
          r.GetGauge("erq.caqp.epoch.pending"),
          r.GetGauge("erq.caqp.shard_imbalance"),
      };
    }();
    return m;
  }
};

}  // namespace

CaqpCache::CaqpCache(size_t n_max, EvictionPolicy policy,
                     bool enable_signatures, bool enable_index, size_t shards)
    : n_max_(n_max),
      policy_(policy),
      enable_signatures_(enable_signatures),
      enable_index_(enable_index),
      shard_count_(shards == 0 ? 1 : shards),
      shards_(shard_count_) {
  // Publish an empty snapshot per shard so readers never see null.
  for (Shard& shard : shards_) {
    shard.published.store(new ShardIndex, std::memory_order_release);
  }
}

CaqpCache::~CaqpCache() {
  CaqpMetrics::Get().size->Add(
      -static_cast<int64_t>(live_total_.load(kRelaxed)));
  // No lookup may be in flight: drain retired snapshots, then drop the
  // currently published ones (entries/items are freed via shared_ptr once
  // the writer-side vectors go with the shards).
  epoch_.ReclaimAll();
  for (Shard& shard : shards_) {
    delete shard.published.exchange(nullptr, kAcqRel);
  }
}

size_t CaqpCache::ShardOf(const std::string& name) const {
  return std::hash<std::string>{}(name) % shard_count_;
}

size_t CaqpCache::ShardOfSet(const RelationSet& relations) const {
  return relations.empty() ? 0 : ShardOf(relations.names().front());
}

// ---------------------------------------------------------------------------
// Lock-free read path
// ---------------------------------------------------------------------------

const CaqpCache::ShardIndex* CaqpCache::LoadIndex(
    size_t shard_id, std::vector<const ShardIndex*>* loaded) const {
  if (loaded == nullptr) {
    return shards_[shard_id].published.load(kAcquire);
  }
  const ShardIndex* idx = (*loaded)[shard_id];
  if (idx == nullptr) {
    idx = shards_[shard_id].published.load(kAcquire);
    (*loaded)[shard_id] = idx;
  }
  return idx;
}

bool CaqpCache::EntryCoversPublished(const PublishedEntry& entry,
                                     const AtomicQueryPart& aqp,
                                     const RelationSignature& query_sig,
                                     LookupWork* work) const {
  ++work->candidates;
  // Stored part covers `aqp` only if its relation set is a subset of
  // aqp's (§2.4: "search in those entries of C_aqp whose relation names
  // form a subset of the relation names of P_i").
  if (enable_signatures_ && !entry.signature.MaybeSubsetOf(query_sig)) {
    ++work->signature_rejects;
    return false;
  }
  if (!entry.relations.IsSubsetOf(aqp.relations())) return false;
  const ItemVec* items = entry.items.load(kAcquire);
  for (const PubItemPtr& part : *items) {
    ++work->conditions;
    if (part->aqp.Covers(aqp)) {
      part->ref.store(true, kRelaxed);
      part->used_seq.store(seq_.fetch_add(1, kRelaxed) + 1, kRelaxed);
      return true;
    }
  }
  return false;
}

bool CaqpCache::FindCoveringPublished(
    const AtomicQueryPart& aqp, const RelationSignature& query_sig,
    LookupWork* work, std::vector<const ShardIndex*>* loaded) const {
  // The entry over the empty relation set (a TRUE-on-nothing part) is a
  // subset of every probe, posts nowhere, and resides in shard 0.
  const ShardIndex* shard0 = LoadIndex(0, loaded);
  if (shard0->empty_rel_entry != nullptr &&
      EntryCoversPublished(*shard0->empty_rel_entry, aqp, query_sig, work)) {
    return true;
  }
  if (!enable_index_) {
    // Ablation fallback: the pre-index linear scan over every entry of
    // every shard.
    for (size_t s = 0; s < shard_count_; ++s) {
      const ShardIndex* idx = LoadIndex(s, loaded);
      for (const PublishedEntryPtr& entry : idx->entries) {
        if (entry->relations.empty()) continue;
        if (EntryCoversPublished(*entry, aqp, query_sig, work)) return true;
      }
    }
    return false;
  }
  // A stored set ⊆ probe set contains its own first name, so it resides
  // in the home shard of one of the probe's names and is posted there
  // under that name. Walking the probe names' home shards therefore
  // visits each candidate exactly once — the published postings are keyed
  // by first (residence) name only, so no per-posting filter is needed.
  for (const std::string& name : aqp.relations().names()) {
    const ShardIndex* idx = LoadIndex(ShardOf(name), loaded);
    auto it = idx->postings.find(name);
    if (it == idx->postings.end()) continue;
    work->postings += it->second.size();
    for (const PublishedEntryPtr& entry : it->second) {
      if (EntryCoversPublished(*entry, aqp, query_sig, work)) return true;
    }
  }
  return false;
}

bool CaqpCache::CoveredBy(const AtomicQueryPart& aqp) {
  RelationSignature query_sig = RelationSignature::Of(aqp.relations());
  LookupWork work;
  bool hit;
  {
    EpochReadGuard guard(&epoch_);
    hit = FindCoveringPublished(aqp, query_sig, &work, nullptr);
  }
  // Flush the per-call tally with one relaxed add per counter, outside the
  // epoch section: the global registry takes a mutex, and blocking while
  // pinning an epoch would stall reclamation (tools/lock_lint.py enforces
  // this).
  counters_.lookups.fetch_add(1, kRelaxed);
  counters_.postings_scanned.fetch_add(work.postings, kRelaxed);
  counters_.candidate_entries.fetch_add(work.candidates, kRelaxed);
  counters_.signature_rejects.fetch_add(work.signature_rejects, kRelaxed);
  counters_.conditions_scanned.fetch_add(work.conditions, kRelaxed);
  if (hit) counters_.hits.fetch_add(1, kRelaxed);
  const CaqpMetrics& global = CaqpMetrics::Get();
  global.lookups->Increment();
  global.postings_scanned->Increment(work.postings);
  global.candidate_entries->Increment(work.candidates);
  global.signature_rejects->Increment(work.signature_rejects);
  global.conditions_scanned->Increment(work.conditions);
  (hit ? global.hits : global.misses)->Increment();
  return hit;
}

std::vector<uint8_t> CaqpCache::CoveredByBatch(
    const std::vector<const AtomicQueryPart*>& aqps) {
  std::vector<uint8_t> out(aqps.size(), 0);
  if (aqps.empty()) return out;
  std::vector<RelationSignature> sigs;
  sigs.reserve(aqps.size());
  for (const AtomicQueryPart* aqp : aqps) {
    sigs.push_back(RelationSignature::Of(aqp->relations()));
  }
  LookupWork work;
  uint64_t hits = 0;
  std::vector<const ShardIndex*> loaded(shard_count_, nullptr);
  {
    // One epoch critical section for the whole batch; each shard's
    // snapshot is loaded at most once into `loaded`.
    EpochReadGuard guard(&epoch_);
    for (size_t i = 0; i < aqps.size(); ++i) {
      if (FindCoveringPublished(*aqps[i], sigs[i], &work, &loaded)) {
        out[i] = 1;
        ++hits;
      }
    }
  }
  const uint64_t n = aqps.size();
  counters_.lookups.fetch_add(n, kRelaxed);
  counters_.postings_scanned.fetch_add(work.postings, kRelaxed);
  counters_.candidate_entries.fetch_add(work.candidates, kRelaxed);
  counters_.signature_rejects.fetch_add(work.signature_rejects, kRelaxed);
  counters_.conditions_scanned.fetch_add(work.conditions, kRelaxed);
  counters_.hits.fetch_add(hits, kRelaxed);
  const CaqpMetrics& global = CaqpMetrics::Get();
  global.lookups->Increment(n);
  global.postings_scanned->Increment(work.postings);
  global.candidate_entries->Increment(work.candidates);
  global.signature_rejects->Increment(work.signature_rejects);
  global.conditions_scanned->Increment(work.conditions);
  global.hits->Increment(hits);
  global.misses->Increment(n - hits);
  return out;
}

// ---------------------------------------------------------------------------
// Writer path
// ---------------------------------------------------------------------------

bool CaqpCache::EntryCoversLocked(const Shard& shard, const Entry& entry,
                                  const AtomicQueryPart& aqp,
                                  const RelationSignature& query_sig) const {
  if (enable_signatures_ && !entry.signature.MaybeSubsetOf(query_sig)) {
    return false;
  }
  if (!entry.relations.IsSubsetOf(aqp.relations())) return false;
  for (size_t slot : entry.items) {
    const PubItemPtr& part = shard.slots[slot].part;
    if (part->aqp.Covers(aqp)) {
      part->ref.store(true, kRelaxed);
      part->used_seq.store(seq_.fetch_add(1, kRelaxed) + 1, kRelaxed);
      return true;
    }
  }
  return false;
}

bool CaqpCache::ShardCoversLocked(const Shard& shard,
                                  const AtomicQueryPart& aqp,
                                  const RelationSignature& query_sig) const {
  if (shard.empty_rel_entry != kNoEntry &&
      EntryCoversLocked(shard, shard.entries[shard.empty_rel_entry], aqp,
                        query_sig)) {
    return true;
  }
  if (!enable_index_) {
    for (const Entry& entry : shard.entries) {
      if (!entry.alive || entry.relations.empty()) continue;
      if (EntryCoversLocked(shard, entry, aqp, query_sig)) return true;
    }
    return false;
  }
  // Writer-side postings carry *all* names of resident entries; keeping
  // only entries posted under their own first name visits each resident
  // candidate exactly once, as in the published read path.
  for (const std::string& name : aqp.relations().names()) {
    auto it = shard.postings.find(name);
    if (it == shard.postings.end()) continue;
    for (size_t id : it->second) {
      const Entry& entry = shard.entries[id];
      if (entry.relations.names().front() != name) continue;
      if (EntryCoversLocked(shard, entry, aqp, query_sig)) return true;
    }
  }
  return false;
}

std::vector<size_t> CaqpCache::SupersetCandidatesLocked(
    const Shard& shard, const RelationSet& relations) const {
  std::vector<size_t> out;
  if (!enable_index_ || relations.empty()) {
    for (size_t i = 0; i < shard.entries.size(); ++i) {
      if (shard.entries[i].alive) out.push_back(i);
    }
    return out;
  }
  // Every superset entry mentions each of `relations`' names, so it posts
  // under all of them; the rarest name's posting list is the cheapest
  // complete candidate set for this shard. A name with no posting list
  // here means no resident entry can be a superset.
  const std::vector<size_t>* best = nullptr;
  for (const std::string& name : relations.names()) {
    auto it = shard.postings.find(name);
    if (it == shard.postings.end()) return out;
    if (best == nullptr || it->second.size() < best->size()) {
      best = &it->second;
    }
  }
  out = *best;  // copied: the caller mutates the index while processing
  return out;
}

void CaqpCache::RepublishEntryItemsLocked(Shard& shard, Entry& entry) {
  auto* vec = new ItemVec;
  vec->reserve(entry.items.size());
  for (size_t slot : entry.items) vec->push_back(shard.slots[slot].part);
  const ItemVec* old = entry.pub->items.exchange(vec, kAcqRel);
  if (old != nullptr) {
    epoch_.Retire([old] { delete old; });
    CaqpMetrics::Get().epoch_retired->Increment();
  }
}

void CaqpCache::RebuildIndexLocked(Shard& shard) {
  auto* index = new ShardIndex;
  index->entries.reserve(shard.entries.size() - shard.free_entries.size());
  for (const Entry& entry : shard.entries) {
    if (!entry.alive) continue;
    index->entries.push_back(entry.pub);
    if (entry.relations.empty()) {
      index->empty_rel_entry = entry.pub;
    } else {
      index->postings[entry.relations.names().front()].push_back(entry.pub);
    }
  }
  const ShardIndex* old = shard.published.exchange(index, kAcqRel);
  epoch_.Retire([old] { delete old; });
  CaqpMetrics::Get().epoch_retired->Increment();
}

void CaqpCache::Insert(const AtomicQueryPart& aqp) {
  counters_.insert_attempts.fetch_add(1, kRelaxed);
  CaqpMetrics::Get().insert_attempts->Increment();
  if (n_max_ == 0) return;
  RelationSignature new_sig = RelationSignature::Of(aqp.relations());

  // Keep only the most general parts. First: is the new part redundant?
  // Checked lock-free against the published snapshots (the covering part
  // is marked recently used: it proved useful again). This can miss a
  // covering part being inserted concurrently; the shard-local recheck
  // under the home shard's lock below closes exactly the case that
  // matters — identical parts hash to the same shard, so the persistence
  // mirror can never see a duplicate insert.
  {
    LookupWork scratch;  // insert-side searches are not lookup statistics
    bool covered;
    {
      EpochReadGuard guard(&epoch_);
      covered = FindCoveringPublished(aqp, new_sig, &scratch, nullptr);
    }
    if (covered) {
      counters_.skipped_covered.fetch_add(1, kRelaxed);
      CaqpMetrics::Get().skipped_covered->Increment();
      return;
    }
  }

  ReaderMutexLock maint(&maint_mu_);

  // Second: drop stored parts that the new one covers. They live in
  // entries whose relation set is a superset of the new part's, which may
  // reside in any shard — visit each shard in turn, one lock at a time.
  for (size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    MutexLock lock(&shard.mu);
    bool membership_changed = false;
    for (size_t id : SupersetCandidatesLocked(shard, aqp.relations())) {
      Entry& entry = shard.entries[id];
      if (!entry.alive) continue;
      if (enable_signatures_ && !new_sig.MaybeSubsetOf(entry.signature)) {
        continue;
      }
      if (!aqp.relations().IsSubsetOf(entry.relations)) continue;
      std::vector<size_t> kept;
      kept.reserve(entry.items.size());
      bool entry_changed = false;
      for (size_t slot : entry.items) {
        Item& victim = shard.slots[slot];
        if (aqp.Covers(victim.part->aqp)) {
          if (listener_ != nullptr) {
            listener_->OnRemove(victim.part->aqp, RemoveReason::kDisplaced);
          }
          victim.alive = false;
          victim.part.reset();  // release the condition's memory
          shard.free_slots.push_back(slot);
          --shard.live;
          live_total_.fetch_sub(1, kRelaxed);
          counters_.removed_covered.fetch_add(1, kRelaxed);
          CaqpMetrics::Get().removed_covered->Increment();
          CaqpMetrics::Get().size->Add(-1);
          entry_changed = true;
        } else {
          kept.push_back(slot);
        }
      }
      if (!entry_changed) continue;
      entry.items = std::move(kept);
      if (entry.items.empty()) {
        RemoveEntryLocked(shard, id);
        membership_changed = true;
      } else {
        RepublishEntryItemsLocked(shard, entry);
      }
    }
    if (membership_changed) RebuildIndexLocked(shard);
  }

  // Capacity: make room before storing (no shard lock held — the evictor
  // takes one shard at a time itself).
  while (live_total_.load(kRelaxed) >= n_max_) {
    if (!EvictOneGlobal()) break;
  }

  {
    Shard& home = shards_[ShardOfSet(aqp.relations())];
    MutexLock lock(&home.mu);
    // Shard-local redundancy recheck against writer state (see above).
    if (ShardCoversLocked(home, aqp, new_sig)) {
      counters_.skipped_covered.fetch_add(1, kRelaxed);
      CaqpMetrics::Get().skipped_covered->Increment();
      return;
    }
    bool created = false;
    size_t entry_idx = GetOrCreateEntryLocked(home, aqp.relations(), &created);
    size_t slot;
    if (!home.free_slots.empty()) {
      slot = home.free_slots.back();
      home.free_slots.pop_back();
    } else {
      slot = home.slots.size();
      home.slots.emplace_back();
    }
    Item& item = home.slots[slot];
    item.part = std::make_shared<PubItem>();
    item.part->aqp = aqp;
    item.part->inserted_seq = seq_.fetch_add(1, kRelaxed) + 1;
    item.part->ref.store(true, kRelaxed);
    item.part->used_seq.store(item.part->inserted_seq, kRelaxed);
    item.alive = true;
    item.entry_index = entry_idx;
    Entry& entry = home.entries[entry_idx];
    entry.items.push_back(slot);
    ++home.live;
    live_total_.fetch_add(1, kRelaxed);
    counters_.inserted.fetch_add(1, kRelaxed);
    CaqpMetrics::Get().inserted->Increment();
    CaqpMetrics::Get().size->Add(1);
    RepublishEntryItemsLocked(home, entry);
    if (created) RebuildIndexLocked(home);
    if (listener_ != nullptr) listener_->OnInsert(aqp);
  }

  // A concurrent insert may have raced past the pre-pass above; compensate
  // so the bound holds once every in-flight insert has run this loop.
  while (live_total_.load(kRelaxed) > n_max_) {
    if (!EvictOneGlobal()) break;
  }
}

bool CaqpCache::EvictClockLocked(Shard& shard) {
  if (shard.live == 0 || shard.slots.empty()) return false;
  // Bounded two-pass sweep: the first full revolution may clear every
  // reference bit, the second must then find a victim — unless live and
  // slots disagree, which the repair path below handles instead of
  // spinning forever.
  const size_t bound = 2 * shard.slots.size() + 1;
  for (size_t step = 0; step < bound; ++step) {
    if (shard.clock_hand >= shard.slots.size()) shard.clock_hand = 0;
    Item& item = shard.slots[shard.clock_hand];
    if (item.alive) {
      if (item.part->ref.load(kRelaxed)) {
        item.part->ref.store(false, kRelaxed);
      } else {
        RemoveItemLocked(shard, shard.clock_hand, RemoveReason::kEvicted);
        ++shard.clock_hand;
        return true;
      }
    }
    ++shard.clock_hand;
  }
  // shard.live > 0 yet no live slot was found: the bookkeeping has
  // diverged. Re-derive the count so callers' capacity loops terminate
  // rather than spin.
  assert(false && "CaqpCache: shard.live > 0 but no live slot found");
  size_t actual = 0;
  for (const Item& item : shard.slots) {
    if (item.alive) ++actual;
  }
  CaqpMetrics::Get().size->Add(static_cast<int64_t>(actual) -
                               static_cast<int64_t>(shard.live));
  if (actual >= shard.live) {
    live_total_.fetch_add(actual - shard.live, kRelaxed);
  } else {
    live_total_.fetch_sub(shard.live - actual, kRelaxed);
  }
  shard.live = actual;
  return false;
}

bool CaqpCache::OldestInShardLocked(const Shard& shard, uint64_t* age,
                                    size_t* slot) const {
  bool found = false;
  uint64_t best = ~uint64_t{0};
  size_t victim = 0;
  for (size_t i = 0; i < shard.slots.size(); ++i) {
    const Item& item = shard.slots[i];
    if (!item.alive) continue;
    uint64_t a = policy_ == EvictionPolicy::kLru
                     ? item.part->used_seq.load(kRelaxed)
                     : item.part->inserted_seq;
    if (!found || a < best) {
      found = true;
      best = a;
      victim = i;
    }
  }
  if (found) {
    *age = best;
    *slot = victim;
  }
  return found;
}

bool CaqpCache::EvictOneGlobal() {
  if (policy_ == EvictionPolicy::kClock) {
    // Round-robin over shards, each running its own clock sweep, so
    // eviction pressure spreads instead of draining one shard.
    const size_t start = evict_hand_.fetch_add(1, kRelaxed);
    for (size_t i = 0; i < shard_count_; ++i) {
      Shard& shard = shards_[(start + i) % shard_count_];
      MutexLock lock(&shard.mu);
      if (EvictClockLocked(shard)) {
        counters_.evictions.fetch_add(1, kRelaxed);
        CaqpMetrics::Get().evictions->Increment();
        return true;
      }
    }
    return false;
  }
  // LRU/FIFO: find the globally oldest part (one shard lock at a time),
  // then re-lock the winning shard. Its minimum may have moved between
  // the scan and the re-lock; evicting whatever is oldest there *now* is
  // still a policy-faithful victim.
  size_t best_shard = shard_count_;
  uint64_t best_age = ~uint64_t{0};
  for (size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(&shard.mu);
    uint64_t age = 0;
    size_t slot = 0;
    if (OldestInShardLocked(shard, &age, &slot) &&
        (best_shard == shard_count_ || age < best_age)) {
      best_age = age;
      best_shard = i;
    }
  }
  if (best_shard == shard_count_) return false;
  Shard& winner = shards_[best_shard];
  MutexLock lock(&winner.mu);
  uint64_t age = 0;
  size_t slot = 0;
  if (!OldestInShardLocked(winner, &age, &slot)) return false;
  RemoveItemLocked(winner, slot, RemoveReason::kEvicted);
  counters_.evictions.fetch_add(1, kRelaxed);
  CaqpMetrics::Get().evictions->Increment();
  return true;
}

void CaqpCache::RemoveItemLocked(Shard& shard, size_t slot,
                                 RemoveReason reason) {
  Item& item = shard.slots[slot];
  const size_t entry_idx = item.entry_index;
  Entry& entry = shard.entries[entry_idx];
  entry.items.erase(std::find(entry.items.begin(), entry.items.end(), slot));
  if (listener_ != nullptr) {
    listener_->OnRemove(item.part->aqp, reason);
  }
  item.alive = false;
  item.part.reset();  // release the condition's memory
  shard.free_slots.push_back(slot);
  --shard.live;
  live_total_.fetch_sub(1, kRelaxed);
  CaqpMetrics::Get().size->Add(-1);
  if (entry.items.empty()) {
    RemoveEntryLocked(shard, entry_idx);
    RebuildIndexLocked(shard);
  } else {
    RepublishEntryItemsLocked(shard, entry);
  }
}

void CaqpCache::DropEntryItemsLocked(Shard& shard, size_t idx) {
  Entry& entry = shard.entries[idx];
  for (size_t slot : entry.items) {
    Item& item = shard.slots[slot];
    if (listener_ != nullptr) {
      listener_->OnRemove(item.part->aqp, RemoveReason::kInvalidated);
    }
    item.alive = false;
    item.part.reset();
    shard.free_slots.push_back(slot);
    --shard.live;
    live_total_.fetch_sub(1, kRelaxed);
    counters_.invalidation_drops.fetch_add(1, kRelaxed);
    CaqpMetrics::Get().invalidation_drops->Increment();
    CaqpMetrics::Get().size->Add(-1);
  }
  entry.items.clear();
  RemoveEntryLocked(shard, idx);
  // The caller republishes (RebuildIndexLocked) once per shard.
}

void CaqpCache::RemoveEntryLocked(Shard& shard, size_t idx) {
  Entry& entry = shard.entries[idx];
  shard.entry_index.erase(entry.relations.Key());
  if (entry.relations.empty()) {
    if (shard.empty_rel_entry == idx) shard.empty_rel_entry = kNoEntry;
  } else {
    for (const std::string& name : entry.relations.names()) {
      auto it = shard.postings.find(name);
      if (it == shard.postings.end()) continue;
      std::vector<size_t>& list = it->second;
      auto pos = std::find(list.begin(), list.end(), idx);
      if (pos != list.end()) {
        *pos = list.back();  // order within a posting list is irrelevant
        list.pop_back();
      }
      if (list.empty()) shard.postings.erase(it);
    }
  }
  entry.alive = false;
  entry.relations = RelationSet();
  entry.signature = RelationSignature();
  entry.items.clear();
  // Snapshots still referencing the published face keep it alive; the
  // writer just drops its reference.
  entry.pub.reset();
  shard.free_entries.push_back(idx);
}

size_t CaqpCache::GetOrCreateEntryLocked(Shard& shard,
                                         const RelationSet& relations,
                                         bool* created) {
  std::string key = relations.Key();
  auto it = shard.entry_index.find(key);
  if (it != shard.entry_index.end()) {
    *created = false;
    return it->second;
  }
  *created = true;
  size_t idx;
  if (!shard.free_entries.empty()) {
    idx = shard.free_entries.back();
    shard.free_entries.pop_back();
  } else {
    shard.entries.emplace_back();
    idx = shard.entries.size() - 1;
  }
  Entry& entry = shard.entries[idx];
  entry.alive = true;
  entry.relations = relations;
  entry.signature = RelationSignature::Of(relations);
  entry.items.clear();
  entry.pub = std::make_shared<PublishedEntry>();
  entry.pub->relations = relations;
  entry.pub->signature = entry.signature;
  entry.pub->items.store(new ItemVec, std::memory_order_release);
  if (relations.empty()) {
    shard.empty_rel_entry = idx;
  } else {
    for (const std::string& name : relations.names()) {
      shard.postings[name].push_back(idx);
    }
  }
  shard.entry_index.emplace(std::move(key), idx);
  return idx;
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

void CaqpCache::Clear() {
  WriterMutexLock maint(&maint_mu_);
  if (listener_ != nullptr) listener_->OnClear();
  size_t removed = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    removed += shard.live;
    shard.slots.clear();
    shard.free_slots.clear();
    shard.entries.clear();
    shard.free_entries.clear();
    shard.entry_index.clear();
    shard.postings.clear();
    shard.empty_rel_entry = kNoEntry;
    shard.live = 0;
    shard.clock_hand = 0;
    RebuildIndexLocked(shard);  // publishes an empty snapshot
  }
  CaqpMetrics::Get().size->Add(-static_cast<int64_t>(removed));
  // The exclusive gate kept every mutator out, so `removed` is exact.
  live_total_.store(0, kRelaxed);
}

void CaqpCache::InvalidateRelation(const std::string& base_name) {
  std::string base = ToLower(base_name);
  std::string prefix = base + "#";
  std::string partition_prefix = base + "@";
  ReaderMutexLock maint(&maint_mu_);
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    // The writer-side posting keys are exactly the relation names of this
    // shard's resident entries, so matching keys (base, renamed
    // occurrences "base#k", or partition tags "base@k") enumerate the
    // affected entries. A self-join entry appears under several matching
    // names — dedup before dropping, and copy the ids out because
    // dropping mutates the index.
    std::vector<size_t> affected;
    for (const auto& [name, list] : shard.postings) {
      if (name == base || StartsWith(name, prefix) ||
          StartsWith(name, partition_prefix)) {
        affected.insert(affected.end(), list.begin(), list.end());
      }
    }
    if (affected.empty()) continue;
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
    for (size_t idx : affected) DropEntryItemsLocked(shard, idx);
    RebuildIndexLocked(shard);
  }
}

size_t CaqpCache::DropIf(
    const std::function<bool(const AtomicQueryPart&)>& pred) {
  ReaderMutexLock maint(&maint_mu_);
  size_t dropped = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    bool membership_changed = false;
    for (size_t idx = 0; idx < shard.entries.size(); ++idx) {
      Entry& entry = shard.entries[idx];
      if (!entry.alive) continue;
      std::vector<size_t> kept;
      kept.reserve(entry.items.size());
      bool entry_changed = false;
      for (size_t slot : entry.items) {
        Item& item = shard.slots[slot];
        if (pred(item.part->aqp)) {
          if (listener_ != nullptr) {
            listener_->OnRemove(item.part->aqp, RemoveReason::kInvalidated);
          }
          item.alive = false;
          item.part.reset();
          shard.free_slots.push_back(slot);
          --shard.live;
          live_total_.fetch_sub(1, kRelaxed);
          ++dropped;
          counters_.invalidation_drops.fetch_add(1, kRelaxed);
          CaqpMetrics::Get().invalidation_drops->Increment();
          CaqpMetrics::Get().size->Add(-1);
          entry_changed = true;
        } else {
          kept.push_back(slot);
        }
      }
      if (!entry_changed) continue;
      entry.items = std::move(kept);
      if (entry.items.empty()) {
        RemoveEntryLocked(shard, idx);
        membership_changed = true;
      } else {
        RepublishEntryItemsLocked(shard, entry);
      }
    }
    if (membership_changed) RebuildIndexLocked(shard);
  }
  return dropped;
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

CaqpCache::CacheStats CaqpCache::stats_snapshot() const {
  CacheStats out;
  out.lookups = counters_.lookups.load(kRelaxed);
  out.hits = counters_.hits.load(kRelaxed);
  out.conditions_scanned = counters_.conditions_scanned.load(kRelaxed);
  out.insert_attempts = counters_.insert_attempts.load(kRelaxed);
  out.inserted = counters_.inserted.load(kRelaxed);
  out.skipped_covered = counters_.skipped_covered.load(kRelaxed);
  out.removed_covered = counters_.removed_covered.load(kRelaxed);
  out.evictions = counters_.evictions.load(kRelaxed);
  out.invalidation_drops = counters_.invalidation_drops.load(kRelaxed);
  out.postings_scanned = counters_.postings_scanned.load(kRelaxed);
  out.candidate_entries = counters_.candidate_entries.load(kRelaxed);
  out.signature_rejects = counters_.signature_rejects.load(kRelaxed);
  out.shards = shard_count_;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    out.entries_live += shard.entries.size() - shard.free_entries.size();
    out.entries_allocated += shard.entries.size();
    out.index_names += shard.postings.size();
    if (shard.live > out.shard_max_live) out.shard_max_live = shard.live;
  }
  EpochManager::Stats es = epoch_.GetStats();
  out.epoch_pending = es.pending;
  // Refresh the sampled gauges: imbalance is the fullest shard relative
  // to a perfectly even spread, in percent (100 = balanced).
  const size_t live = live_total_.load(kRelaxed);
  const CaqpMetrics& global = CaqpMetrics::Get();
  global.epoch_pending->Set(static_cast<int64_t>(es.pending));
  global.shard_imbalance->Set(
      live == 0 ? 0
                : static_cast<int64_t>(100 * out.shard_max_live *
                                       shard_count_ / live));
  return out;
}

void CaqpCache::ResetStats() {
  counters_.lookups.store(0, kRelaxed);
  counters_.hits.store(0, kRelaxed);
  counters_.conditions_scanned.store(0, kRelaxed);
  counters_.insert_attempts.store(0, kRelaxed);
  counters_.inserted.store(0, kRelaxed);
  counters_.skipped_covered.store(0, kRelaxed);
  counters_.removed_covered.store(0, kRelaxed);
  counters_.evictions.store(0, kRelaxed);
  counters_.invalidation_drops.store(0, kRelaxed);
  counters_.postings_scanned.store(0, kRelaxed);
  counters_.candidate_entries.store(0, kRelaxed);
  counters_.signature_rejects.store(0, kRelaxed);
}

std::string CaqpCache::Explain() const {
  size_t entries_live = 0;
  size_t entries_allocated = 0;
  size_t names = 0;
  size_t max_list = 0;
  std::string max_name;
  uint64_t total_list = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    entries_live += shard.entries.size() - shard.free_entries.size();
    entries_allocated += shard.entries.size();
    names += shard.postings.size();
    for (const auto& [name, list] : shard.postings) {
      total_list += list.size();
      if (list.size() > max_list) {
        max_list = list.size();
        max_name = name;
      }
    }
  }
  const size_t live = live_total_.load(kRelaxed);
  CacheStats s = stats_snapshot();
  const char* policy = policy_ == EvictionPolicy::kClock  ? "clock"
                       : policy_ == EvictionPolicy::kLru  ? "lru"
                                                          : "fifo";
  auto per_lookup = [&](uint64_t v) {
    return s.lookups == 0 ? 0.0
                          : static_cast<double>(v) /
                                static_cast<double>(s.lookups);
  };
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "C_aqp: %llu/%llu parts in %llu entries (%llu allocated), "
                "%llu names indexed, policy=%s, signatures=%s, index=%s, "
                "shards=%llu\n",
                static_cast<unsigned long long>(live),
                static_cast<unsigned long long>(n_max_),
                static_cast<unsigned long long>(entries_live),
                static_cast<unsigned long long>(entries_allocated),
                static_cast<unsigned long long>(names), policy,
                enable_signatures_ ? "on" : "off",
                enable_index_ ? "on" : "off",
                static_cast<unsigned long long>(shard_count_));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "index fan-out: avg posting list %.2f, max %llu (\"%s\")\n",
                names == 0 ? 0.0
                           : static_cast<double>(total_list) /
                                 static_cast<double>(names),
                static_cast<unsigned long long>(max_list), max_name.c_str());
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "lookups=%llu hits=%llu (%.1f%%); per lookup: postings=%.2f "
      "candidates=%.2f sig-rejects=%.2f cover-tests=%.2f",
      static_cast<unsigned long long>(s.lookups),
      static_cast<unsigned long long>(s.hits),
      s.lookups == 0 ? 0.0
                     : 100.0 * static_cast<double>(s.hits) /
                           static_cast<double>(s.lookups),
      per_lookup(s.postings_scanned), per_lookup(s.candidate_entries),
      per_lookup(s.signature_rejects), per_lookup(s.conditions_scanned));
  out += buf;
  return out;
}

void CaqpCache::SetChangeListener(ChangeListener* listener) {
  WriterMutexLock maint(&maint_mu_);
  listener_ = listener;
}

std::vector<AtomicQueryPart> CaqpCache::Snapshot() const {
  std::vector<AtomicQueryPart> out;
  out.reserve(live_total_.load(kRelaxed));
  EpochReadGuard guard(&epoch_);
  for (size_t s = 0; s < shard_count_; ++s) {
    const ShardIndex* idx = shards_[s].published.load(kAcquire);
    for (const PublishedEntryPtr& entry : idx->entries) {
      const ItemVec* items = entry->items.load(kAcquire);
      for (const PubItemPtr& part : *items) out.push_back(part->aqp);
    }
  }
  return out;
}

}  // namespace erq
