#include "core/caqp_cache.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

#include "common/metrics.h"
#include "common/string_util.h"

namespace erq {

namespace {

constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

/// Global C_aqp instruments, resolved once (see metrics.h). These mirror
/// the per-instance AtomicCounters into the process-wide registry,
/// aggregating across every live cache; per-instance numbers remain
/// available via stats_snapshot(). `erq.caqp.size` tracks live parts by
/// delta (inserts minus removals; the dtor subtracts what remains).
struct CaqpMetrics {
  Counter* lookups;
  Counter* hits;
  Counter* misses;
  Counter* conditions_scanned;
  Counter* insert_attempts;
  Counter* inserted;
  Counter* skipped_covered;
  Counter* removed_covered;
  Counter* evictions;
  Counter* invalidation_drops;
  Counter* postings_scanned;
  Counter* candidate_entries;
  Counter* signature_rejects;
  Gauge* size;

  static const CaqpMetrics& Get() {
    static const CaqpMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return CaqpMetrics{
          r.GetCounter("erq.caqp.lookups"),
          r.GetCounter("erq.caqp.hits"),
          r.GetCounter("erq.caqp.misses"),
          r.GetCounter("erq.caqp.conditions_scanned"),
          r.GetCounter("erq.caqp.insert_attempts"),
          r.GetCounter("erq.caqp.inserted"),
          r.GetCounter("erq.caqp.skipped_covered"),
          r.GetCounter("erq.caqp.removed_covered"),
          r.GetCounter("erq.caqp.evictions"),
          r.GetCounter("erq.caqp.invalidation_drops"),
          r.GetCounter("erq.caqp.postings_scanned"),
          r.GetCounter("erq.caqp.candidate_entries"),
          r.GetCounter("erq.caqp.signature_rejects"),
          r.GetGauge("erq.caqp.size"),
      };
    }();
    return m;
  }
};

}  // namespace

CaqpCache::~CaqpCache() {
  WriterMutexLock lock(&mu_);
  CaqpMetrics::Get().size->Add(-static_cast<int64_t>(live_));
  live_ = 0;
}

bool CaqpCache::CoveredBy(const AtomicQueryPart& aqp) {
  RelationSignature query_sig = RelationSignature::Of(aqp.relations());
  LookupWork work;
  bool hit;
  {
    ReaderMutexLock lock(&mu_);
    hit = FindCoveringLocked(aqp, query_sig, &work);
  }
  // Flush the per-call tally with one relaxed add per counter. Doing this
  // outside the shared region keeps the lock hold time minimal.
  counters_.lookups.fetch_add(1, kRelaxed);
  counters_.postings_scanned.fetch_add(work.postings, kRelaxed);
  counters_.candidate_entries.fetch_add(work.candidates, kRelaxed);
  counters_.signature_rejects.fetch_add(work.signature_rejects, kRelaxed);
  counters_.conditions_scanned.fetch_add(work.conditions, kRelaxed);
  if (hit) counters_.hits.fetch_add(1, kRelaxed);
  const CaqpMetrics& global = CaqpMetrics::Get();
  global.lookups->Increment();
  global.postings_scanned->Increment(work.postings);
  global.candidate_entries->Increment(work.candidates);
  global.signature_rejects->Increment(work.signature_rejects);
  global.conditions_scanned->Increment(work.conditions);
  (hit ? global.hits : global.misses)->Increment();
  return hit;
}

bool CaqpCache::EntryCoversLocked(const Entry& entry,
                                  const AtomicQueryPart& aqp,
                                  const RelationSignature& query_sig,
                                  LookupWork* work) const {
  ++work->candidates;
  // Stored part covers `aqp` only if its relation set is a subset of
  // aqp's (§2.4: "search in those entries of C_aqp whose relation names
  // form a subset of the relation names of P_i").
  if (enable_signatures_ && !entry.signature.MaybeSubsetOf(query_sig)) {
    ++work->signature_rejects;
    return false;
  }
  if (!entry.relations.IsSubsetOf(aqp.relations())) return false;
  for (size_t slot : entry.items) {
    const Item& item = slots_[slot];
    ++work->conditions;
    if (item.aqp.Covers(aqp)) {
      item.ref.store(true, kRelaxed);
      item.used_seq.store(seq_.fetch_add(1, kRelaxed) + 1, kRelaxed);
      return true;
    }
  }
  return false;
}

bool CaqpCache::FindCoveringLocked(const AtomicQueryPart& aqp,
                                   const RelationSignature& query_sig,
                                   LookupWork* work) const {
  // The entry over the empty relation set (a TRUE-on-nothing part) is a
  // subset of every probe but appears in no posting list.
  if (empty_rel_entry_ != kNoEntry &&
      EntryCoversLocked(entries_[empty_rel_entry_], aqp, query_sig, work)) {
    return true;
  }
  if (!enable_index_) {
    // Ablation fallback: the pre-index linear scan over every entry.
    for (const Entry& entry : entries_) {
      if (!entry.alive || entry.relations.empty()) continue;
      if (EntryCoversLocked(entry, aqp, query_sig, work)) return true;
    }
    return false;
  }
  // A stored set ⊆ probe set has all its names among the probe's names, so
  // it posts under its own first name, which is one of the names walked
  // here; skipping posted entries whose first name differs visits each
  // candidate exactly once without a dedup set.
  for (const std::string& name : aqp.relations().names()) {
    auto it = postings_.find(name);
    if (it == postings_.end()) continue;
    const std::vector<size_t>& list = it->second;
    work->postings += list.size();
    for (size_t id : list) {
      const Entry& entry = entries_[id];
      if (entry.relations.names().front() != name) continue;
      if (EntryCoversLocked(entry, aqp, query_sig, work)) return true;
    }
  }
  return false;
}

std::vector<size_t> CaqpCache::SupersetCandidatesLocked(
    const RelationSet& relations) const {
  std::vector<size_t> out;
  if (!enable_index_ || relations.empty()) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].alive) out.push_back(i);
    }
    return out;
  }
  // Every superset entry mentions each of `relations`' names, so it posts
  // under all of them; the rarest name's posting list is the cheapest
  // complete candidate set. A name with no posting list at all means no
  // entry can be a superset.
  const std::vector<size_t>* best = nullptr;
  for (const std::string& name : relations.names()) {
    auto it = postings_.find(name);
    if (it == postings_.end()) return out;
    if (best == nullptr || it->second.size() < best->size()) {
      best = &it->second;
    }
  }
  out = *best;  // copied: the caller mutates the index while processing
  return out;
}

void CaqpCache::Insert(const AtomicQueryPart& aqp) {
  counters_.insert_attempts.fetch_add(1, kRelaxed);
  CaqpMetrics::Get().insert_attempts->Increment();
  if (n_max_ == 0) return;
  RelationSignature new_sig = RelationSignature::Of(aqp.relations());
  LookupWork scratch;  // insert-side searches are not lookup statistics

  WriterMutexLock lock(&mu_);

  // Keep only the most general parts. First: is the new part redundant?
  // (The covering part is marked recently used: it proved useful again.)
  if (FindCoveringLocked(aqp, new_sig, &scratch)) {
    counters_.skipped_covered.fetch_add(1, kRelaxed);
    CaqpMetrics::Get().skipped_covered->Increment();
    return;
  }

  // Second: drop stored parts that the new one covers (they live in
  // entries whose relation set is a superset of the new part's).
  for (size_t id : SupersetCandidatesLocked(aqp.relations())) {
    Entry& entry = entries_[id];
    if (!entry.alive) continue;
    if (enable_signatures_ && !new_sig.MaybeSubsetOf(entry.signature)) {
      continue;
    }
    if (!aqp.relations().IsSubsetOf(entry.relations)) continue;
    std::vector<size_t> kept;
    kept.reserve(entry.items.size());
    for (size_t slot : entry.items) {
      if (aqp.Covers(slots_[slot].aqp)) {
        Item& victim = slots_[slot];
        if (listener_ != nullptr) {
          listener_->OnRemove(victim.aqp, RemoveReason::kDisplaced);
        }
        victim.alive = false;
        victim.aqp = AtomicQueryPart();  // release the condition's memory
        free_slots_.push_back(slot);
        --live_;
        counters_.removed_covered.fetch_add(1, kRelaxed);
        CaqpMetrics::Get().removed_covered->Increment();
        CaqpMetrics::Get().size->Add(-1);
      } else {
        kept.push_back(slot);
      }
    }
    entry.items = std::move(kept);
    if (entry.items.empty()) RemoveEntryLocked(id);
  }

  while (live_ >= n_max_) EvictOneLocked();

  size_t entry_idx = GetOrCreateEntryLocked(aqp.relations());
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slots_.size();
    slots_.emplace_back();
  }
  Item& item = slots_[slot];
  item.aqp = aqp;
  item.alive = true;
  item.inserted_seq = seq_.fetch_add(1, kRelaxed) + 1;
  item.entry_index = entry_idx;
  item.ref.store(true, kRelaxed);
  item.used_seq.store(item.inserted_seq, kRelaxed);
  entries_[entry_idx].items.push_back(slot);
  ++live_;
  counters_.inserted.fetch_add(1, kRelaxed);
  CaqpMetrics::Get().inserted->Increment();
  CaqpMetrics::Get().size->Add(1);
  if (listener_ != nullptr) listener_->OnInsert(aqp);
}

void CaqpCache::EvictOneLocked() {
  if (live_ == 0 || slots_.empty()) return;
  counters_.evictions.fetch_add(1, kRelaxed);
  CaqpMetrics::Get().evictions->Increment();
  switch (policy_) {
    case EvictionPolicy::kClock: {
      // Bounded two-pass sweep: the first full revolution may clear every
      // reference bit, the second must then find a victim — unless live_
      // and slots_ disagree, which the repair path below handles instead
      // of spinning forever.
      const size_t bound = 2 * slots_.size() + 1;
      for (size_t step = 0; step < bound; ++step) {
        if (clock_hand_ >= slots_.size()) clock_hand_ = 0;
        Item& item = slots_[clock_hand_];
        if (item.alive) {
          if (item.ref.load(kRelaxed)) {
            item.ref.store(false, kRelaxed);
          } else {
            RemoveItemLocked(clock_hand_);
            ++clock_hand_;
            return;
          }
        }
        ++clock_hand_;
      }
      break;
    }
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo: {
      size_t victim = slots_.size();
      uint64_t best = ~uint64_t{0};
      for (size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].alive) continue;
        uint64_t age = policy_ == EvictionPolicy::kLru
                           ? slots_[i].used_seq.load(kRelaxed)
                           : slots_[i].inserted_seq;
        if (age < best) {
          best = age;
          victim = i;
        }
      }
      if (victim < slots_.size()) {
        RemoveItemLocked(victim);
        return;
      }
      break;
    }
  }
  // live_ > 0 yet no live slot was found: the bookkeeping has diverged.
  // Re-derive the count so callers' `while (live_ >= n_max_)` loops
  // terminate rather than spin.
  assert(false && "CaqpCache: live_ > 0 but no live slot found");
  size_t actual = 0;
  for (const Item& item : slots_) {
    if (item.alive) ++actual;
  }
  CaqpMetrics::Get().size->Add(static_cast<int64_t>(actual) -
                               static_cast<int64_t>(live_));
  live_ = actual;
}

void CaqpCache::RemoveItemLocked(size_t slot) {
  Item& item = slots_[slot];
  Entry& entry = entries_[item.entry_index];
  entry.items.erase(std::find(entry.items.begin(), entry.items.end(), slot));
  if (listener_ != nullptr) {
    listener_->OnRemove(item.aqp, RemoveReason::kEvicted);
  }
  item.alive = false;
  item.aqp = AtomicQueryPart();  // release the condition's memory
  free_slots_.push_back(slot);
  --live_;
  CaqpMetrics::Get().size->Add(-1);
  if (entry.items.empty()) RemoveEntryLocked(item.entry_index);
}

void CaqpCache::DropEntryItemsLocked(size_t idx) {
  Entry& entry = entries_[idx];
  for (size_t slot : entry.items) {
    Item& item = slots_[slot];
    if (listener_ != nullptr) {
      listener_->OnRemove(item.aqp, RemoveReason::kInvalidated);
    }
    item.alive = false;
    item.aqp = AtomicQueryPart();
    free_slots_.push_back(slot);
    --live_;
    counters_.invalidation_drops.fetch_add(1, kRelaxed);
    CaqpMetrics::Get().invalidation_drops->Increment();
    CaqpMetrics::Get().size->Add(-1);
  }
  entry.items.clear();
  RemoveEntryLocked(idx);
}

void CaqpCache::RemoveEntryLocked(size_t idx) {
  Entry& entry = entries_[idx];
  entry_index_.erase(entry.relations.Key());
  if (entry.relations.empty()) {
    if (empty_rel_entry_ == idx) empty_rel_entry_ = kNoEntry;
  } else {
    for (const std::string& name : entry.relations.names()) {
      auto it = postings_.find(name);
      if (it == postings_.end()) continue;
      std::vector<size_t>& list = it->second;
      auto pos = std::find(list.begin(), list.end(), idx);
      if (pos != list.end()) {
        *pos = list.back();  // order within a posting list is irrelevant
        list.pop_back();
      }
      if (list.empty()) postings_.erase(it);
    }
  }
  entry.alive = false;
  entry.relations = RelationSet();
  entry.signature = RelationSignature();
  entry.items.clear();
  free_entries_.push_back(idx);
}

size_t CaqpCache::GetOrCreateEntryLocked(const RelationSet& relations) {
  std::string key = relations.Key();
  auto it = entry_index_.find(key);
  if (it != entry_index_.end()) return it->second;
  size_t idx;
  if (!free_entries_.empty()) {
    idx = free_entries_.back();
    free_entries_.pop_back();
  } else {
    entries_.emplace_back();
    idx = entries_.size() - 1;
  }
  Entry& entry = entries_[idx];
  entry.alive = true;
  entry.relations = relations;
  entry.signature = RelationSignature::Of(relations);
  entry.items.clear();
  if (relations.empty()) {
    empty_rel_entry_ = idx;
  } else {
    for (const std::string& name : relations.names()) {
      postings_[name].push_back(idx);
    }
  }
  entry_index_.emplace(std::move(key), idx);
  return idx;
}

void CaqpCache::Clear() {
  WriterMutexLock lock(&mu_);
  if (listener_ != nullptr) listener_->OnClear();
  slots_.clear();
  free_slots_.clear();
  entries_.clear();
  free_entries_.clear();
  entry_index_.clear();
  postings_.clear();
  empty_rel_entry_ = kNoEntry;
  CaqpMetrics::Get().size->Add(-static_cast<int64_t>(live_));
  live_ = 0;
  clock_hand_ = 0;
}

void CaqpCache::InvalidateRelation(const std::string& base_name) {
  std::string base = ToLower(base_name);
  std::string prefix = base + "#";
  WriterMutexLock lock(&mu_);
  // The posting-list keys are exactly the relation names of live entries,
  // so matching keys (base or renamed occurrences "base#k") enumerate the
  // affected entries. A self-join entry appears under several matching
  // names — dedup before dropping, and copy the ids out because dropping
  // mutates the index.
  std::vector<size_t> affected;
  for (const auto& [name, list] : postings_) {
    if (name == base || StartsWith(name, prefix)) {
      affected.insert(affected.end(), list.begin(), list.end());
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  for (size_t idx : affected) DropEntryItemsLocked(idx);
}

size_t CaqpCache::DropIf(
    const std::function<bool(const AtomicQueryPart&)>& pred) {
  WriterMutexLock lock(&mu_);
  size_t dropped = 0;
  for (size_t idx = 0; idx < entries_.size(); ++idx) {
    Entry& entry = entries_[idx];
    if (!entry.alive) continue;
    std::vector<size_t> kept;
    kept.reserve(entry.items.size());
    for (size_t slot : entry.items) {
      if (pred(slots_[slot].aqp)) {
        Item& item = slots_[slot];
        if (listener_ != nullptr) {
          listener_->OnRemove(item.aqp, RemoveReason::kInvalidated);
        }
        item.alive = false;
        item.aqp = AtomicQueryPart();
        free_slots_.push_back(slot);
        --live_;
        ++dropped;
        counters_.invalidation_drops.fetch_add(1, kRelaxed);
        CaqpMetrics::Get().invalidation_drops->Increment();
        CaqpMetrics::Get().size->Add(-1);
      } else {
        kept.push_back(slot);
      }
    }
    entry.items = std::move(kept);
    if (entry.items.empty()) RemoveEntryLocked(idx);
  }
  return dropped;
}

CaqpCache::CacheStats CaqpCache::stats_snapshot() const {
  CacheStats out;
  out.lookups = counters_.lookups.load(kRelaxed);
  out.hits = counters_.hits.load(kRelaxed);
  out.conditions_scanned = counters_.conditions_scanned.load(kRelaxed);
  out.insert_attempts = counters_.insert_attempts.load(kRelaxed);
  out.inserted = counters_.inserted.load(kRelaxed);
  out.skipped_covered = counters_.skipped_covered.load(kRelaxed);
  out.removed_covered = counters_.removed_covered.load(kRelaxed);
  out.evictions = counters_.evictions.load(kRelaxed);
  out.invalidation_drops = counters_.invalidation_drops.load(kRelaxed);
  out.postings_scanned = counters_.postings_scanned.load(kRelaxed);
  out.candidate_entries = counters_.candidate_entries.load(kRelaxed);
  out.signature_rejects = counters_.signature_rejects.load(kRelaxed);
  ReaderMutexLock lock(&mu_);
  out.entries_live = entries_.size() - free_entries_.size();
  out.entries_allocated = entries_.size();
  out.index_names = postings_.size();
  return out;
}

void CaqpCache::ResetStats() {
  counters_.lookups.store(0, kRelaxed);
  counters_.hits.store(0, kRelaxed);
  counters_.conditions_scanned.store(0, kRelaxed);
  counters_.insert_attempts.store(0, kRelaxed);
  counters_.inserted.store(0, kRelaxed);
  counters_.skipped_covered.store(0, kRelaxed);
  counters_.removed_covered.store(0, kRelaxed);
  counters_.evictions.store(0, kRelaxed);
  counters_.invalidation_drops.store(0, kRelaxed);
  counters_.postings_scanned.store(0, kRelaxed);
  counters_.candidate_entries.store(0, kRelaxed);
  counters_.signature_rejects.store(0, kRelaxed);
}

std::string CaqpCache::Explain() const {
  size_t live, entries_live, entries_allocated, names;
  size_t max_list = 0;
  std::string max_name;
  uint64_t total_list = 0;
  {
    ReaderMutexLock lock(&mu_);
    live = live_;
    entries_live = entries_.size() - free_entries_.size();
    entries_allocated = entries_.size();
    names = postings_.size();
    for (const auto& [name, list] : postings_) {
      total_list += list.size();
      if (list.size() > max_list) {
        max_list = list.size();
        max_name = name;
      }
    }
  }
  CacheStats s = stats_snapshot();
  const char* policy = policy_ == EvictionPolicy::kClock  ? "clock"
                       : policy_ == EvictionPolicy::kLru  ? "lru"
                                                          : "fifo";
  auto per_lookup = [&](uint64_t v) {
    return s.lookups == 0 ? 0.0
                          : static_cast<double>(v) /
                                static_cast<double>(s.lookups);
  };
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "C_aqp: %llu/%llu parts in %llu entries (%llu allocated), "
                "%llu names indexed, policy=%s, signatures=%s, index=%s\n",
                static_cast<unsigned long long>(live),
                static_cast<unsigned long long>(n_max_),
                static_cast<unsigned long long>(entries_live),
                static_cast<unsigned long long>(entries_allocated),
                static_cast<unsigned long long>(names), policy,
                enable_signatures_ ? "on" : "off",
                enable_index_ ? "on" : "off");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "index fan-out: avg posting list %.2f, max %llu (\"%s\")\n",
                names == 0 ? 0.0
                           : static_cast<double>(total_list) /
                                 static_cast<double>(names),
                static_cast<unsigned long long>(max_list), max_name.c_str());
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "lookups=%llu hits=%llu (%.1f%%); per lookup: postings=%.2f "
      "candidates=%.2f sig-rejects=%.2f cover-tests=%.2f",
      static_cast<unsigned long long>(s.lookups),
      static_cast<unsigned long long>(s.hits),
      s.lookups == 0 ? 0.0
                     : 100.0 * static_cast<double>(s.hits) /
                           static_cast<double>(s.lookups),
      per_lookup(s.postings_scanned), per_lookup(s.candidate_entries),
      per_lookup(s.signature_rejects), per_lookup(s.conditions_scanned));
  out += buf;
  return out;
}

void CaqpCache::SetChangeListener(ChangeListener* listener) {
  WriterMutexLock lock(&mu_);
  listener_ = listener;
}

std::vector<AtomicQueryPart> CaqpCache::Snapshot() const {
  ReaderMutexLock lock(&mu_);
  std::vector<AtomicQueryPart> out;
  out.reserve(live_);
  for (const Item& item : slots_) {
    if (item.alive) out.push_back(item.aqp);
  }
  return out;
}

}  // namespace erq
