#pragma once

/// \file
/// §5 irrelevant-update filter: which updates can un-empty a stored part?

#include <string>
#include <vector>

#include "core/atomic_query_part.h"
#include "types/value.h"
#include "types/schema.h"

namespace erq {

/// The paper's §5 future-work direction, after the irrelevant-update
/// detection of materialized-view maintenance (Blakeley et al. [8], Levy &
/// Sagiv [25]): most updates cannot turn a stored empty atomic query part
/// non-empty, so they need not invalidate it.
///
/// Two facts drive the filter:
///   * DELETIONS are always irrelevant — removing rows can only shrink the
///     output of a select-project-join expression, and shrinking an empty
///     output leaves it empty.
///   * An INSERTED row r into relation R is irrelevant to a part P unless
///     r satisfies every primitive term of P that constrains only R's
///     columns. (Terms spanning other relations — join terms, opaque
///     multi-relation comparisons — are conservatively treated as
///     satisfiable.)
///
/// All decisions are conservative: "relevant" may be a false alarm (the
/// part is dropped unnecessarily), "irrelevant" is always sound.
///
/// Both functions are pure (no shared state) and safe to call from any
/// thread.

/// True if inserting `row` (with `schema`) into the base relation whose
/// canonical occurrences match `base_name` ("name", "name#2", ...) could
/// possibly make `part`'s output non-empty.
bool InsertIsRelevant(const AtomicQueryPart& part, const std::string& base_name,
                      const Schema& schema, const Row& row);

/// Batch form: true if ANY of `rows` is relevant to `part`.
bool InsertsAreRelevant(const AtomicQueryPart& part,
                        const std::string& base_name, const Schema& schema,
                        const std::vector<Row>& rows);

}  // namespace erq

