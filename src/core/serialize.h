#pragma once

/// \file
/// Text (de)serialization of C_aqp contents (the `\save`/`\load` format).

#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/caqp_cache.h"

namespace erq {

/// Line-oriented text serialization of C_aqp contents, so a warmed cache
/// survives process restarts in read-mostly deployments (the paper keeps
/// C_aqp purely in memory; persistence is a production affordance).
///
/// Format (one atomic query part per line):
///   aqp v1 <rel,rel,...> | term ; term ; ...
/// with terms one of
///   iv <rel.col> <lo-kind> [<value>] <hi-kind> [<value>]   (interval)
///   ne <rel.col> <value>                                   (not-equal)
///   cc <rel.col> <op> <rel.col>                            (col-col)
/// Values are typed: i:<int>, d:<double>, s:<base16-utf8>, t:<days>.
/// Opaque terms are not serializable; parts containing them are skipped by
/// the writer (counted in the result), never mis-written.

/// Serializes every live part. `skipped_opaque` (optional) counts parts
/// omitted because they contain opaque terms.
std::string SerializeCache(const CaqpCache& cache,
                           size_t* skipped_opaque = nullptr);

/// Parses `text` and inserts every part into `cache` (subject to the usual
/// redundancy/capacity rules). Returns the number of parts inserted;
/// malformed lines produce an error and nothing else is inserted from
/// that point on.
ERQ_NODISCARD StatusOr<size_t> DeserializeInto(const std::string& text, CaqpCache* cache);

/// Serializes a single part to one line (fails on opaque terms).
ERQ_NODISCARD StatusOr<std::string> SerializePart(const AtomicQueryPart& part);
/// Parses one serialized line back into a part.
ERQ_NODISCARD StatusOr<AtomicQueryPart> ParsePart(const std::string& line);

}  // namespace erq

