#include "core/manager.h"

#include <cstdio>

#include "core/query_api.h"

namespace erq {

namespace {

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", seconds * 1e3);
  return buf;
}

// Adapts the detector's (relation, partition) coverage probe to the
// executor-layer oracle interface, so erq_exec needs no knowledge of the
// detector. Sound by Theorem 2: a hit means C_aqp stores a part over
// "table@partition" whose condition covers the scan condition.
class DetectorPartitionOracle final : public PartitionCoverageOracle {
 public:
  explicit DetectorPartitionOracle(EmptyResultDetector* detector)
      : detector_(detector) {}

  bool PartitionCovered(const std::string& table, size_t partition,
                        const Conjunction& condition) const override {
    return detector_->PartitionCovered(table, partition, condition);
  }

 private:
  EmptyResultDetector* detector_;  // borrowed; outlives the oracle
};

// Sums a per-scan partition counter (>= 0 means "this scan was
// partition-pruned") across every table scan in the executed plan.
size_t SumPartitionField(const PhysOpPtr& root,
                         int64_t PhysicalOperator::*field) {
  if (root == nullptr) return 0;
  size_t total = 0;
  if (root->kind == PhysOpKind::kTableScan && (*root).*field >= 0) {
    total += static_cast<size_t>((*root).*field);
  }
  for (const PhysOpPtr& child : root->children) {
    total += SumPartitionField(child, field);
  }
  return total;
}

// Counts the CachedResultScan leaves of an executed plan and the rows
// they emitted — the per-query reuse exposure (QueryOutcome /
// QueryResponse `reused_subtrees` and `reuse_rows_served`).
void CollectReuseServed(const PhysOpPtr& root, size_t* subtrees,
                        size_t* rows) {
  if (root == nullptr) return;
  if (root->kind == PhysOpKind::kCachedResultScan) {
    ++*subtrees;
    if (root->actual_rows > 0) *rows += static_cast<size_t>(root->actual_rows);
  }
  for (const PhysOpPtr& child : root->children) {
    CollectReuseServed(child, subtrees, rows);
  }
}

// Injects the reuse store into the optimizer's options at manager
// construction (the store pointer is stable for the manager's lifetime).
OptimizerOptions WithReuseSource(OptimizerOptions options,
                                 const ReuseSpliceSource* source) {
  if (source != nullptr) options.reuse_source = source;
  return options;
}

}  // namespace

std::string QueryOutcome::Timings::ToString() const {
  std::string out = "parse=" + FormatSeconds(parse_seconds);
  out += " plan=" + FormatSeconds(plan_seconds);
  out += " optimize=" + FormatSeconds(optimize_seconds);
  out += " gate=" + FormatSeconds(gate_seconds);
  out += " check=" + FormatSeconds(check_seconds);
  out += " execute=" + FormatSeconds(execute_seconds);
  out += " record=" + FormatSeconds(record_seconds);
  out += " total=" + FormatSeconds(total_seconds);
  return out;
}

std::string QueryOutcome::ToString() const {
  // One renderer for every surface: convert to the wire value type and
  // use its text form (rows are omitted here — callers that used the old
  // format never received rows through ToString()).
  QueryRequest request;
  request.row_limit = 0;
  request.explain = ExplainVerbosity::kFull;
  return QueryResponse::FromOutcome(*this, request).ToText();
}

EmptyResultManager::Instruments EmptyResultManager::ResolveInstruments() {
  MetricsRegistry& r = MetricsRegistry::Global();
  Instruments m;
  m.stage_parse = r.GetHistogram("erq.manager.stage.parse");
  m.stage_plan = r.GetHistogram("erq.manager.stage.plan");
  m.stage_optimize = r.GetHistogram("erq.manager.stage.optimize");
  m.stage_gate = r.GetHistogram("erq.manager.stage.gate");
  m.stage_check = r.GetHistogram("erq.manager.stage.check");
  m.stage_execute = r.GetHistogram("erq.manager.stage.execute");
  m.stage_record = r.GetHistogram("erq.manager.stage.record");
  m.query_total = r.GetHistogram("erq.manager.query_total");
  m.queries = r.GetCounter("erq.manager.queries");
  m.low_cost = r.GetCounter("erq.manager.low_cost");
  m.checks = r.GetCounter("erq.manager.checks");
  m.detected_empty = r.GetCounter("erq.manager.detected_empty");
  m.executed = r.GetCounter("erq.manager.executed");
  m.empty_results = r.GetCounter("erq.manager.empty_results");
  m.recorded = r.GetCounter("erq.manager.recorded");
  m.branches_pruned = r.GetCounter("erq.manager.branches_pruned");
  return m;
}

EmptyResultManager::EmptyResultManager(Catalog* catalog, StatsCatalog* stats,
                                       EmptyResultConfig config,
                                       OptimizerOptions optimizer_options)
    : catalog_(catalog),
      stats_catalog_(stats),
      config_(config),
      init_status_(config.Validate()),
      planner_(catalog),
      reuse_store_(config.reuse.enabled
                       ? std::make_unique<ReuseStore>(config.reuse)
                       : nullptr),
      optimizer_(catalog, stats,
                 WithReuseSource(optimizer_options, reuse_store_.get())),
      detector_(config),
      metrics_(ResolveInstruments()) {
  if (!init_status_.ok()) return;  // unusable: don't hook catalog events
  if (config_.persist.enabled()) {
    // Recover the previous process's C_aqp before any query runs; a
    // recovery failure makes the manager unusable rather than silently
    // running without durability.
    StatusOr<std::unique_ptr<Persistence>> p =
        Persistence::Open(config_.persist);
    if (!p.ok()) {
      init_status_ = p.status();
      return;
    }
    persistence_ = std::move(*p);
    init_status_ = persistence_->AttachCaqp(&detector_.cache());
    if (!init_status_.ok()) return;
  }
  catalog_->AddEventListener([this](const TableUpdateEvent& event) {
    if (stats_catalog_ != nullptr) stats_catalog_->Invalidate(event.table_name);
    switch (event.kind) {
      case TableUpdateEvent::Kind::kInsert: {
        auto table = catalog_->GetTable(event.table_name);
        if (table.ok() && event.inserted_rows != nullptr) {
          // The partition-aware overload narrows invalidation of tagged
          // "base@k" parts to the partitions the rows land in; it falls
          // back to whole-relation filtering when the table is
          // unpartitioned.
          detector_.OnRelationInserted(event.table_name,
                                       (*table)->schema(),
                                       *event.inserted_rows,
                                       (*table)->partition_scheme());
          if (reuse_store_ != nullptr) {
            reuse_store_->OnRelationInserted(
                event.table_name, (*table)->schema(), *event.inserted_rows);
          }
        } else {
          detector_.OnRelationUpdated(event.table_name);
          if (reuse_store_ != nullptr) {
            reuse_store_->OnRelationUpdated(event.table_name);
          }
        }
        break;
      }
      case TableUpdateEvent::Kind::kDelete:
        detector_.OnRelationDeleted(event.table_name);
        // Unlike C_aqp (where deletions invalidate nothing), a deletion
        // can shrink a cached non-empty intermediate; the store drops
        // those and keeps the zero-row facts.
        if (reuse_store_ != nullptr) {
          reuse_store_->OnRelationDeleted(event.table_name);
        }
        break;
      case TableUpdateEvent::Kind::kDropTable:
      case TableUpdateEvent::Kind::kGeneric:
        detector_.OnRelationUpdated(event.table_name);
        if (reuse_store_ != nullptr) {
          reuse_store_->OnRelationUpdated(event.table_name);
        }
        break;
    }
  });
}

StatusOr<QueryOutcome> EmptyResultManager::Query(const std::string& sql) {
  return Execute(QueryRequest::Sql(sql));
}

StatusOr<QueryOutcome> EmptyResultManager::QueryStatement(
    const Statement& stmt) {
  return Execute(QueryRequest::Parsed(&stmt));
}

std::vector<StatusOr<QueryOutcome>> EmptyResultManager::QueryBatch(
    const std::vector<std::string>& sqls) {
  return ExecuteBatch(QueryRequest::Batch(sqls));
}

StatusOr<QueryOutcome> EmptyResultManager::Execute(
    const QueryRequest& request) {
  ERQ_RETURN_IF_ERROR(init_status_);
  if (!request.batch.empty()) {
    return Status::InvalidArgument(
        "QueryRequest with a batch must go through ExecuteBatch");
  }
  if (request.statement != nullptr && !request.sql.empty()) {
    return Status::InvalidArgument(
        "QueryRequest must set exactly one of sql / statement / batch");
  }
  if (request.statement != nullptr) {
    return ExecuteStatement(*request.statement);
  }
  // The sql form; an empty string falls through to the parser so the
  // caller sees the same ParseError the pre-request API produced.
  double parse_seconds = 0.0;
  std::unique_ptr<Statement> stmt;
  {
    ScopedSpan span(metrics_.stage_parse, &parse_seconds);
    ERQ_ASSIGN_OR_RETURN(stmt, Parser::Parse(request.sql));
  }
  ERQ_ASSIGN_OR_RETURN(QueryOutcome outcome, ExecuteStatement(*stmt));
  outcome.timings.parse_seconds = parse_seconds;
  outcome.timings.total_seconds += parse_seconds;
  return outcome;
}

StatusOr<PhysOpPtr> EmptyResultManager::Prepare(const std::string& sql) {
  ERQ_RETURN_IF_ERROR(init_status_);
  ERQ_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt, Parser::Parse(sql));
  ERQ_ASSIGN_OR_RETURN(PlannedQuery planned, planner_.PlanStatement(*stmt));
  return optimizer_.Optimize(planned.root);
}

Status EmptyResultManager::PrepareInto(const Statement& stmt,
                                       PreparedStatement* prep) {
  metrics_.queries->Increment();
  {
    MutexLock lock(&mu_);
    ++stats_.queries;
  }
  QueryOutcome& outcome = prep->outcome;
  {
    ScopedSpan span(metrics_.stage_plan, &outcome.timings.plan_seconds);
    ERQ_ASSIGN_OR_RETURN(prep->planned, planner_.PlanStatement(stmt));
  }
  {
    ScopedSpan span(metrics_.stage_optimize,
                    &outcome.timings.optimize_seconds);
    ERQ_ASSIGN_OR_RETURN(prep->physical, optimizer_.Optimize(prep->planned.root));
  }
  outcome.estimated_cost = prep->physical->estimated_cost;
  {
    ScopedSpan span(metrics_.stage_gate, &outcome.timings.gate_seconds);
    outcome.high_cost = outcome.estimated_cost > EffectiveCostThreshold();
  }
  if (!outcome.high_cost) {
    metrics_.low_cost->Increment();
    MutexLock lock(&mu_);
    ++stats_.low_cost;
  }
  return Status::OK();
}

StatusOr<QueryOutcome> EmptyResultManager::ExecuteStatement(
    const Statement& stmt) {
  ERQ_RETURN_IF_ERROR(init_status_);
  PreparedStatement prep;
  ERQ_RETURN_IF_ERROR(PrepareInto(stmt, &prep));

  // §2.2: only high-cost queries are worth checking against C_aqp.
  std::optional<CheckResult> check;
  if (config_.detection_enabled && prep.outcome.high_cost) {
    {
      ScopedSpan span(metrics_.stage_check,
                      &prep.outcome.timings.check_seconds);
      check = detector_.CheckEmpty(prep.planned.root);
    }
    metrics_.checks->Increment();
    MutexLock lock(&mu_);
    ++stats_.checks;
  }
  return FinishChecked(std::move(prep), std::move(check));
}

std::vector<StatusOr<QueryOutcome>> EmptyResultManager::ExecuteBatch(
    const QueryRequest& request) {
  const std::vector<std::string>& sqls = request.batch;
  std::vector<StatusOr<QueryOutcome>> out;
  out.reserve(sqls.size());
  if (request.statement != nullptr || !request.sql.empty()) {
    out.emplace_back(Status::InvalidArgument(
        "ExecuteBatch takes a batch request; use Execute for sql/statement"));
    return out;
  }
  if (!init_status_.ok()) {
    for (size_t i = 0; i < sqls.size(); ++i) out.emplace_back(init_status_);
    return out;
  }

  // Phase 1: parse + prepare every statement. Failures settle their slot
  // immediately; survivors queue for the batched check.
  struct Pending {
    size_t index;  // slot in `results`
    PreparedStatement prep;
    double parse_seconds = 0.0;
  };
  std::vector<std::optional<StatusOr<QueryOutcome>>> results(sqls.size());
  std::vector<Pending> pending;
  pending.reserve(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    Pending p;
    p.index = i;
    std::unique_ptr<Statement> stmt;
    {
      ScopedSpan span(metrics_.stage_parse, &p.parse_seconds);
      StatusOr<std::unique_ptr<Statement>> parsed = Parser::Parse(sqls[i]);
      if (!parsed.ok()) {
        results[i] = parsed.status();
        continue;
      }
      stmt = std::move(parsed).value();
    }
    Status prepared = PrepareInto(*stmt, &p.prep);
    if (!prepared.ok()) {
      results[i] = std::move(prepared);
      continue;
    }
    pending.push_back(std::move(p));
  }

  // Phase 2: one batched C_aqp probe over every high-cost candidate.
  std::vector<LogicalOpPtr> roots;
  std::vector<size_t> checked;  // indices into `pending`
  for (size_t k = 0; k < pending.size(); ++k) {
    if (config_.detection_enabled && pending[k].prep.outcome.high_cost) {
      roots.push_back(pending[k].prep.planned.root);
      checked.push_back(k);
    }
  }
  std::vector<std::optional<CheckResult>> verdicts(pending.size());
  if (!roots.empty()) {
    double batch_check_seconds = 0.0;
    std::vector<CheckResult> batch;
    {
      ScopedSpan span(metrics_.stage_check, &batch_check_seconds);
      batch = detector_.CheckEmptyBatch(roots);
    }
    // The probe ran once for everyone: attribute its cost in proportion
    // to the atomic parts each query contributed (parts_checked), since
    // probe work scales with parts examined, not with query count. A
    // zero-part batch (every query settled before any part was probed)
    // falls back to an even split.
    size_t total_parts = 0;
    for (const CheckResult& r : batch) total_parts += r.parts_checked;
    for (size_t j = 0; j < checked.size(); ++j) {
      const double share =
          total_parts > 0
              ? batch_check_seconds *
                    (static_cast<double>(batch[j].parts_checked) /
                     static_cast<double>(total_parts))
              : batch_check_seconds / static_cast<double>(checked.size());
      verdicts[checked[j]] = batch[j];
      pending[checked[j]].prep.outcome.timings.check_seconds = share;
    }
    metrics_.checks->Increment(checked.size());
    MutexLock lock(&mu_);
    stats_.checks += checked.size();
  }

  // Phase 3: finish each query independently, in input order.
  for (Pending& p : pending) {
    StatusOr<QueryOutcome> finished =
        FinishChecked(std::move(p.prep), verdicts[&p - pending.data()]);
    if (finished.ok()) {
      finished->timings.parse_seconds = p.parse_seconds;
      finished->timings.total_seconds += p.parse_seconds;
    }
    results[p.index] = std::move(finished);
  }
  for (std::optional<StatusOr<QueryOutcome>>& r : results) {
    out.push_back(*std::move(r));
  }
  return out;
}

StatusOr<QueryOutcome> EmptyResultManager::FinishChecked(
    PreparedStatement prep, std::optional<CheckResult> check) {
  QueryOutcome outcome = std::move(prep.outcome);
  PhysOpPtr physical = std::move(prep.physical);
  Timer& total_timer = prep.total_timer;

  if (check.has_value() && check->provably_empty) {
    outcome.detected_empty = true;
    outcome.result_empty = true;
    outcome.result.layout = physical->layout;
    outcome.plan = physical;
    EmptyResultExplanation explanation;
    explanation.annotated_plan = physical->ToString();
    char cause[128];
    std::snprintf(cause, sizeof(cause),
                  "proven empty from C_aqp without execution (%zu atomic "
                  "query part(s) checked)",
                  check->parts_checked);
    explanation.minimal_causes.push_back(cause);
    outcome.explanation = std::move(explanation);
    metrics_.detected_empty->Increment();
    {
      MutexLock lock(&mu_);
      ++stats_.detected_empty;
      stats_.execute_seconds_saved_estimate += outcome.estimated_cost;
      cost_gate_.ObserveDetected(outcome.estimated_cost,
                                 outcome.timings.check_seconds);
    }
    outcome.timings.total_seconds = total_timer.Seconds();
    metrics_.query_total->Observe(outcome.timings.total_seconds);
    return outcome;
  }

  if (config_.detection_enabled && outcome.high_cost) {
    // §2.5 partial detection: branches of set operations that are provably
    // empty need not be evaluated.
    LogicalOpPtr pruned;
    {
      ScopedSpan span(metrics_.stage_check, &outcome.timings.check_seconds);
      pruned = detector_.PrunePlan(prep.planned.root, &outcome.branches_pruned);
    }
    if (outcome.branches_pruned > 0) {
      metrics_.branches_pruned->Increment(outcome.branches_pruned);
      {
        MutexLock lock(&mu_);
        stats_.branches_pruned += outcome.branches_pruned;
      }
      ScopedSpan span(metrics_.stage_optimize,
                      &outcome.timings.optimize_seconds);
      ERQ_ASSIGN_OR_RETURN(physical, optimizer_.Optimize(pruned));
    }
  }

  std::vector<HarvestedIntermediate> harvested;
  {
    ScopedSpan span(metrics_.stage_execute, &outcome.timings.execute_seconds);
    // Pruner + oracle are stack-local but must outlive Run (they are
    // consulted from TableScanIter::Open); the detector they borrow is
    // internally synchronized, so probes are safe mid-execution.
    DetectorPartitionOracle oracle(&detector_);
    PartitionPruner pruner(&oracle);
    ExecOptions exec_options;
    if (config_.partition_pruning) exec_options.pruner = &pruner;
    // Harvest only for high-cost queries: the gate already decided this
    // query was worth checking, so its intermediates are the ones later
    // high-cost queries are likely to repeat (§2.2's economics applied to
    // sub-plans).
    if (reuse_store_ != nullptr && outcome.high_cost) {
      exec_options.harvest = &harvested;
      exec_options.harvest_max_rows = config_.reuse.max_rows;
    }
    ERQ_ASSIGN_OR_RETURN(outcome.result, Executor::Run(physical, exec_options));
  }
  outcome.partitions_scanned =
      SumPartitionField(physical, &PhysicalOperator::partitions_scanned);
  outcome.partitions_pruned =
      SumPartitionField(physical, &PhysicalOperator::partitions_pruned);
  CollectReuseServed(physical, &outcome.reused_subtrees,
                     &outcome.reuse_rows_served);
  outcome.executed = true;
  outcome.result_rows = outcome.result.rows.size();
  outcome.result_empty = outcome.result.rows.empty();
  // Operation O1: the plan, with per-operator output cardinalities, is
  // surfaced to the user to explain the (possibly empty) result.
  outcome.plan = physical;
  metrics_.executed->Increment();
  if (outcome.result_empty) metrics_.empty_results->Increment();

  {
    MutexLock lock(&mu_);
    ++stats_.executed;
    cost_gate_.ObserveExecuted(outcome.estimated_cost,
                               outcome.timings.check_seconds,
                               outcome.timings.execute_seconds,
                               outcome.result_empty);
    if (outcome.result_empty) ++stats_.empty_results;
  }

  if (outcome.result_empty) {
    auto explanation = ExplainEmptyResult(physical);
    if (explanation.ok()) outcome.explanation = *std::move(explanation);
  }

  if (outcome.result_empty && config_.detection_enabled &&
      (outcome.high_cost || config_.record_low_cost)) {
    {
      ScopedSpan span(metrics_.stage_record, &outcome.timings.record_seconds);
      outcome.aqps_recorded = detector_.RecordEmpty(physical);
    }
    if (outcome.aqps_recorded > 0) {
      metrics_.recorded->Increment();
      MutexLock lock(&mu_);
      ++stats_.recorded;
    }
  }

  if (config_.detection_enabled && config_.partition_pruning &&
      config_.record_partition_empties) {
    // Partition-granular harvest is not gated on result_empty or the cost
    // gate: every scanned partition with zero scan-condition matches is
    // ground truth the scan already paid for (see config.h).
    ScopedSpan span(metrics_.stage_record, &outcome.timings.record_seconds);
    outcome.partition_aqps_recorded =
        detector_.RecordPartitionEmpties(physical);
  }

  if (reuse_store_ != nullptr && !harvested.empty()) {
    ScopedSpan span(metrics_.stage_record, &outcome.timings.record_seconds);
    outcome.intermediates_harvested = HarvestIntermediates(harvested);
  }
  if (outcome.reused_subtrees > 0 || outcome.intermediates_harvested > 0) {
    MutexLock lock(&mu_);
    stats_.reused_subtrees += outcome.reused_subtrees;
    stats_.intermediates_harvested += outcome.intermediates_harvested;
  }
  outcome.timings.total_seconds = total_timer.Seconds();
  metrics_.query_total->Observe(outcome.timings.total_seconds);
  return outcome;
}

size_t EmptyResultManager::HarvestIntermediates(
    const std::vector<HarvestedIntermediate>& harvested) {
  size_t admitted = 0;
  for (const HarvestedIntermediate& h : harvested) {
    if (h.node == nullptr || h.rows == nullptr) continue;
    StatusOr<std::vector<AtomicQueryPart>> parts =
        DecomposePhysicalPart(h.node, config_.dnf);
    // Only a single-part decomposition is storable: a multi-term DNF
    // describes per-term row sets, but the harvested rows are the full
    // sigma over the disjunction. (Filter-over-TableScan always yields
    // exactly one relation; the store re-checks that invariant.)
    if (!parts.ok() || parts->size() != 1) continue;
    const AtomicQueryPart& part = (*parts)[0];
    if (reuse_store_->Admit(part, h.rows, h.node->estimated_cost)) {
      ++admitted;
      // Unification with C_aqp: a zero-row intermediate is exactly an
      // emptiness fact, so plain detection benefits from it too — even
      // though the whole query may have returned rows.
      if (h.rows->empty()) detector_.cache().Insert(part);
    }
  }
  return admitted;
}

double EmptyResultManager::EffectiveCostThreshold() const {
  if (!config_.auto_tune_c_cost) return config_.c_cost;
  MutexLock lock(&mu_);
  return cost_gate_.Suggest(config_.c_cost);
}

void EmptyResultManager::OnTableUpdated(const std::string& table_name) {
  detector_.OnRelationUpdated(table_name);
  if (stats_catalog_ != nullptr) stats_catalog_->Invalidate(table_name);
}

}  // namespace erq
