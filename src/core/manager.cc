#include "core/manager.h"

#include <chrono>

namespace erq {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

EmptyResultManager::EmptyResultManager(Catalog* catalog, StatsCatalog* stats,
                                       EmptyResultConfig config,
                                       OptimizerOptions optimizer_options)
    : catalog_(catalog),
      stats_catalog_(stats),
      config_(config),
      planner_(catalog),
      optimizer_(catalog, stats, optimizer_options),
      detector_(config) {
  catalog_->AddEventListener([this](const TableUpdateEvent& event) {
    if (stats_catalog_ != nullptr) stats_catalog_->Invalidate(event.table_name);
    switch (event.kind) {
      case TableUpdateEvent::Kind::kInsert: {
        auto table = catalog_->GetTable(event.table_name);
        if (table.ok() && event.inserted_rows != nullptr) {
          detector_.OnRelationInserted(event.table_name,
                                       (*table)->schema(),
                                       *event.inserted_rows);
        } else {
          detector_.OnRelationUpdated(event.table_name);
        }
        break;
      }
      case TableUpdateEvent::Kind::kDelete:
        detector_.OnRelationDeleted(event.table_name);
        break;
      case TableUpdateEvent::Kind::kDropTable:
      case TableUpdateEvent::Kind::kGeneric:
        detector_.OnRelationUpdated(event.table_name);
        break;
    }
  });
}

StatusOr<QueryOutcome> EmptyResultManager::Query(const std::string& sql) {
  ERQ_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt, Parser::Parse(sql));
  return QueryStatement(*stmt);
}

StatusOr<PhysOpPtr> EmptyResultManager::Prepare(const std::string& sql) {
  ERQ_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt, Parser::Parse(sql));
  ERQ_ASSIGN_OR_RETURN(PlannedQuery planned, planner_.PlanStatement(*stmt));
  return optimizer_.Optimize(planned.root);
}

StatusOr<QueryOutcome> EmptyResultManager::QueryStatement(
    const Statement& stmt) {
  {
    MutexLock lock(&mu_);
    ++stats_.queries;
  }
  QueryOutcome outcome;

  ERQ_ASSIGN_OR_RETURN(PlannedQuery planned, planner_.PlanStatement(stmt));
  ERQ_ASSIGN_OR_RETURN(PhysOpPtr physical, optimizer_.Optimize(planned.root));
  outcome.estimated_cost = physical->estimated_cost;
  outcome.high_cost = outcome.estimated_cost > EffectiveCostThreshold();
  if (!outcome.high_cost) {
    MutexLock lock(&mu_);
    ++stats_.low_cost;
  }

  // §2.2: only high-cost queries are worth checking against C_aqp.
  if (config_.detection_enabled && outcome.high_cost) {
    auto start = std::chrono::steady_clock::now();
    CheckResult check = detector_.CheckEmpty(planned.root);
    outcome.check_seconds = SecondsSince(start);
    MutexLock lock(&mu_);
    ++stats_.checks;
    if (check.provably_empty) {
      outcome.detected_empty = true;
      outcome.result_empty = true;
      outcome.result.layout = physical->layout;
      outcome.plan_text = physical->ToString();
      ++stats_.detected_empty;
      stats_.execute_seconds_saved_estimate += outcome.estimated_cost;
      cost_gate_.ObserveDetected(outcome.estimated_cost,
                                 outcome.check_seconds);
      return outcome;
    }
  }

  if (config_.detection_enabled && outcome.high_cost) {
    // §2.5 partial detection: branches of set operations that are provably
    // empty need not be evaluated.
    auto start = std::chrono::steady_clock::now();
    LogicalOpPtr pruned =
        detector_.PrunePlan(planned.root, &outcome.branches_pruned);
    outcome.check_seconds += SecondsSince(start);
    if (outcome.branches_pruned > 0) {
      {
        MutexLock lock(&mu_);
        stats_.branches_pruned += outcome.branches_pruned;
      }
      ERQ_ASSIGN_OR_RETURN(physical, optimizer_.Optimize(pruned));
    }
  }

  {
    auto start = std::chrono::steady_clock::now();
    ERQ_ASSIGN_OR_RETURN(outcome.result, Executor::Run(physical));
    outcome.execute_seconds = SecondsSince(start);
  }
  outcome.executed = true;
  outcome.result_rows = outcome.result.rows.size();
  outcome.result_empty = outcome.result.rows.empty();
  // Operation O1: the plan, with per-operator output cardinalities, is
  // surfaced to the user to explain the (possibly empty) result.
  outcome.plan_text = physical->ToString();

  {
    MutexLock lock(&mu_);
    ++stats_.executed;
    cost_gate_.ObserveExecuted(outcome.estimated_cost, outcome.check_seconds,
                               outcome.execute_seconds, outcome.result_empty);
    if (outcome.result_empty) ++stats_.empty_results;
  }

  if (outcome.result_empty && config_.detection_enabled &&
      (outcome.high_cost || config_.record_low_cost)) {
    auto start = std::chrono::steady_clock::now();
    outcome.aqps_recorded = detector_.RecordEmpty(physical);
    outcome.record_seconds = SecondsSince(start);
    if (outcome.aqps_recorded > 0) {
      MutexLock lock(&mu_);
      ++stats_.recorded;
    }
  }
  return outcome;
}

double EmptyResultManager::EffectiveCostThreshold() const {
  if (!config_.auto_tune_c_cost) return config_.c_cost;
  MutexLock lock(&mu_);
  return cost_gate_.Suggest(config_.c_cost);
}

void EmptyResultManager::OnTableUpdated(const std::string& table_name) {
  detector_.OnRelationUpdated(table_name);
  if (stats_catalog_ != nullptr) stats_catalog_->Invalidate(table_name);
}

}  // namespace erq
