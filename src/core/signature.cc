#include "core/signature.h"

#include <functional>

#include "common/hash.h"

namespace erq {

RelationSignature RelationSignature::Of(const RelationSet& relations) {
  RelationSignature sig;
  for (const std::string& name : relations.names()) {
    uint64_t h = Mix64(std::hash<std::string>{}(name));
    for (int i = 0; i < kBitsPerName; ++i) {
      sig.bits_ |= uint64_t{1} << (h & 63);
      h = Mix64(h);
    }
  }
  return sig;
}

}  // namespace erq
