#include "core/update_filter.h"

#include "common/string_util.h"
#include "expr/expr.h"

namespace erq {

namespace {

/// True if `relation` is an occurrence of `base` ("base" or "base#k").
bool IsOccurrenceOf(const std::string& relation, const std::string& base) {
  if (relation == base) return true;
  return StartsWith(relation, base + "#");
}

/// Evaluates a single-relation primitive term against the inserted row.
/// Returns true when the row could satisfy it (conservative on anything
/// not decidable from one row of this relation).
bool RowMaySatisfy(const PrimitiveTerm& term, const std::string& base,
                   const Schema& schema, const Row& row) {
  switch (term.kind()) {
    case PrimitiveTerm::Kind::kInterval:
    case PrimitiveTerm::Kind::kNotEqual: {
      if (!IsOccurrenceOf(term.column().relation, base)) {
        return true;  // constrains another relation; undecidable here
      }
      auto idx = schema.IndexOf(term.column().column);
      if (!idx.ok()) return true;  // unknown column: be conservative
      const Value& v = row[*idx];
      if (v.is_null()) return false;  // NULL satisfies no comparison
      if (term.kind() == PrimitiveTerm::Kind::kInterval) {
        return term.interval().ContainsPoint(v);
      }
      if (!v.ComparableWith(term.value())) return true;
      return v != term.value();
    }
    case PrimitiveTerm::Kind::kColCol:
      // A join (or same-relation column comparison) cannot be refuted from
      // one inserted row without consulting the other side.
      return true;
    case PrimitiveTerm::Kind::kOpaque:
      return true;
  }
  return true;
}

}  // namespace

bool InsertIsRelevant(const AtomicQueryPart& part, const std::string& base_name,
                      const Schema& schema, const Row& row) {
  std::string base = ToLower(base_name);
  bool mentions = false;
  for (const std::string& rel : part.relations().names()) {
    if (IsOccurrenceOf(rel, base)) {
      mentions = true;
      break;
    }
  }
  if (!mentions) return false;  // the part never reads this relation

  // The inserted row contributes a new tuple to every occurrence of the
  // relation in the part's product. The part can only become non-empty if
  // the row passes every single-relation constraint on (at least) one
  // occurrence; since the same row feeds all occurrences, check each
  // occurrence independently and stay conservative across them.
  for (const std::string& rel : part.relations().names()) {
    if (!IsOccurrenceOf(rel, base)) continue;
    bool occurrence_possible = true;
    for (const PrimitiveTerm& term : part.condition().terms()) {
      // Only terms that constrain exactly this occurrence can refute.
      if ((term.kind() == PrimitiveTerm::Kind::kInterval ||
           term.kind() == PrimitiveTerm::Kind::kNotEqual) &&
          term.column().relation == rel) {
        PrimitiveTerm local = term;
        if (!RowMaySatisfy(local, rel, schema, row)) {
          occurrence_possible = false;
          break;
        }
      }
    }
    if (occurrence_possible) return true;
  }
  return false;
}

bool InsertsAreRelevant(const AtomicQueryPart& part,
                        const std::string& base_name, const Schema& schema,
                        const std::vector<Row>& rows) {
  for (const Row& row : rows) {
    if (InsertIsRelevant(part, base_name, schema, row)) return true;
  }
  return false;
}

}  // namespace erq
