#include "core/cost_gate.h"

#include "common/metrics.h"

namespace erq {

namespace {

/// Gate instruments, resolved once (see metrics.h: pointers are stable).
struct GateMetrics {
  Counter* observed_executed;
  Counter* observed_detected;

  static const GateMetrics& Get() {
    static const GateMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return GateMetrics{
          r.GetCounter("erq.gate.observed_executed"),
          r.GetCounter("erq.gate.observed_detected"),
      };
    }();
    return m;
  }
};

}  // namespace

double CostGateSnapshot::Suggest(double fallback, uint64_t min_samples) const {
  if (samples() < min_samples || executed == 0) return fallback;
  if (alpha_seconds_per_cost_unit <= 0.0 || average_check_seconds <= 0.0) {
    return fallback;
  }
  double p_save = empty_fraction * hit_fraction;
  if (p_save <= 0.0) {
    // Nothing has ever been saved: checks are pure overhead so far, but a
    // cold cache also yields p_hit = 0. Be conservative and gate only the
    // cheapest decile of observed costs.
    p_save = 0.01;
  }
  return average_check_seconds / (alpha_seconds_per_cost_unit * p_save);
}

void AdaptiveCostGate::ObserveExecuted(double estimated_cost,
                                       double check_seconds,
                                       double execute_seconds,
                                       bool was_empty) {
  GateMetrics::Get().observed_executed->Increment();
  ++executed_;
  if (was_empty) ++empty_results_;
  if (check_seconds > 0.0) {
    ++checks_;
    check_seconds_sum_ += check_seconds;
  }
  if (estimated_cost > 0.0 && execute_seconds > 0.0) {
    cost_time_sum_ += estimated_cost * execute_seconds;
    cost_sq_sum_ += estimated_cost * estimated_cost;
  }
}

void AdaptiveCostGate::ObserveDetected(double estimated_cost,
                                       double check_seconds) {
  (void)estimated_cost;
  GateMetrics::Get().observed_detected->Increment();
  ++detected_;
  ++checks_;
  check_seconds_sum_ += check_seconds;
}

double AdaptiveCostGate::AverageCheckSeconds() const {
  return checks_ == 0 ? 0.0 : check_seconds_sum_ / static_cast<double>(checks_);
}

double AdaptiveCostGate::AlphaSecondsPerCostUnit() const {
  return cost_sq_sum_ <= 0.0 ? 0.0 : cost_time_sum_ / cost_sq_sum_;
}

double AdaptiveCostGate::EmptyFraction() const {
  uint64_t total = executed_ + detected_;
  if (total == 0) return 0.0;
  return static_cast<double>(empty_results_ + detected_) /
         static_cast<double>(total);
}

double AdaptiveCostGate::HitFraction() const {
  uint64_t empties = empty_results_ + detected_;
  if (empties == 0) return 0.0;
  return static_cast<double>(detected_) / static_cast<double>(empties);
}

CostGateSnapshot AdaptiveCostGate::Snapshot() const {
  CostGateSnapshot snap;
  snap.executed = executed_;
  snap.detected = detected_;
  snap.empty_results = empty_results_;
  snap.checks = checks_;
  snap.average_check_seconds = AverageCheckSeconds();
  snap.alpha_seconds_per_cost_unit = AlphaSecondsPerCostUnit();
  snap.empty_fraction = EmptyFraction();
  snap.hit_fraction = HitFraction();
  return snap;
}

double AdaptiveCostGate::Suggest(double fallback, uint64_t min_samples) const {
  return Snapshot().Suggest(fallback, min_samples);
}

}  // namespace erq
