#pragma once

/// \file
/// The public request/response surface of the detection pipeline:
/// value-type QueryRequest in, value-type QueryResponse out.
///
/// QueryOutcome (core/manager.h) is the *engine's* result — it carries
/// live objects (the physical plan, the full materialized row set) that
/// cannot cross a process boundary. QueryRequest/QueryResponse are the
/// *wire* surface: plain values with a versioned JSON rendering
/// (`erq.response.v1`) and one shared text renderer, used by erq_server,
/// erq_shell, and the examples. EmptyResultManager::Execute/ExecuteBatch
/// accept a QueryRequest directly; the legacy Query/QueryStatement/
/// QueryBatch signatures are thin wrappers over them.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/manager.h"

namespace erq {

/// How much explanatory detail a QueryResponse should carry.
enum class ExplainVerbosity {
  kNone,     ///< outcome flags, timings, and rows only
  kSummary,  ///< + minimal empty-result causes (Operation O1 summary)
  kFull,     ///< + the annotated physical plan text
};

/// One query submission, as a plain value. Exactly one input form must be
/// set: `sql` (a single SQL string), `statement` (a pre-parsed statement,
/// borrowed — the caller keeps it alive for the duration of the call), or
/// `batch` (several SQL strings sharing one batched C_aqp probe).
struct QueryRequest {
  /// Default row_limit: enough for interactive use, small enough that a
  /// wire response stays bounded no matter what the query returns.
  static constexpr size_t kDefaultRowLimit = 100;

  /// Single SQL statement text ("" when statement/batch is used).
  std::string sql;
  /// Pre-parsed alternative to `sql`; borrowed, may be nullptr.
  const Statement* statement = nullptr;
  /// Batch mode: several SQL strings checked in one batched C_aqp lookup.
  std::vector<std::string> batch;
  /// Tenant namespace the server routes this request to ("" = the default
  /// tenant). The in-process manager ignores it — isolation happens one
  /// level up, in TenantRegistry.
  std::string tenant;
  /// Maximum rows carried by the response (0 = metadata only). The engine
  /// still materializes the full result; the limit bounds the wire copy.
  size_t row_limit = kDefaultRowLimit;
  /// Explanation detail carried by the response.
  ExplainVerbosity explain = ExplainVerbosity::kSummary;

  /// Builds a single-statement request from SQL text.
  static QueryRequest Sql(std::string sql);
  /// Builds a single-statement request from a pre-parsed statement
  /// (borrowed; must outlive the Execute call).
  static QueryRequest Parsed(const Statement* statement);
  /// Builds a batch request.
  static QueryRequest Batch(std::vector<std::string> sqls);

  /// Rejects requests with zero or multiple input forms set, and explain
  /// values outside the enum. Execute/ExecuteBatch call this and surface
  /// the Status, so a malformed request fails loudly.
  ERQ_NODISCARD Status Validate() const;
};

/// The wire-friendly result of one query: QueryOutcome's scalar fields,
/// a bounded copy of the result rows, and the explanation rendered to
/// strings. `status` carries per-query errors — a batch response is a
/// vector of QueryResponse where each element's status stands alone, so
/// transport layers map every item to the same structured error object
/// regardless of whether it came from the single or the batch path.
struct QueryResponse {
  /// The versioned wire schema name emitted by ToJson().
  static constexpr const char* kSchema = "erq.response.v1";

  /// Per-query status. When not OK every other field is default-empty.
  Status status;

  bool detected_empty = false;   ///< answered from C_aqp, execution skipped
  bool executed = false;         ///< the physical plan actually ran
  bool result_empty = false;     ///< final result set was empty
  bool high_cost = false;        ///< estimated cost exceeded C_cost
  size_t result_rows = 0;        ///< total rows the query produced
  size_t aqps_recorded = 0;      ///< atomic parts harvested into C_aqp
  size_t branches_pruned = 0;    ///< §2.5 set-op branches removed
  size_t partitions_scanned = 0;  ///< partitions read by the plan's scans
  size_t partitions_pruned = 0;   ///< partitions skipped via zone maps or
                                  ///< stored (relation, partition) parts
  size_t partition_aqps_recorded = 0;  ///< (relation, partition) parts stored
  size_t reused_subtrees = 0;    ///< plan subtrees served from the reuse store
  size_t reuse_rows_served = 0;  ///< rows emitted by those spliced scans
  size_t intermediates_harvested = 0;  ///< operator outputs admitted into
                                       ///< the reuse store after execution
  double estimated_cost = 0.0;   ///< optimizer cost estimate

  QueryOutcome::Timings timings;  ///< per-stage wall-clock breakdown

  std::vector<std::string> columns;  ///< output column names, in order
  /// Up to `row_limit` rows of the result (values by column position).
  std::vector<Row> rows;
  /// True when `rows` was truncated to the request's row_limit.
  bool rows_truncated = false;

  /// Annotated physical plan text (ExplainVerbosity::kFull only).
  std::string plan_text;
  /// Minimal empty-result causes (Operation O1; kSummary and up, present
  /// only when the result was empty).
  std::vector<std::string> empty_causes;

  /// Builds the response for a successful outcome, applying the request's
  /// row_limit and explain verbosity.
  static QueryResponse FromOutcome(const QueryOutcome& outcome,
                                   const QueryRequest& request);
  /// Builds an error response (all payload fields default).
  static QueryResponse FromStatus(const Status& status);
  /// Convenience: FromOutcome on success, FromStatus on error.
  static QueryResponse FromResult(const StatusOr<QueryOutcome>& result,
                                  const QueryRequest& request);

  /// The versioned `erq.response.v1` JSON document:
  ///   {"schema":"erq.response.v1",
  ///    "status":{"code":"OK","message":""},
  ///    "outcome":{"detected_empty":b,"executed":b,"result_empty":b,
  ///               "high_cost":b,"result_rows":n,"returned_rows":n,
  ///               "rows_truncated":b,"aqps_recorded":n,
  ///               "branches_pruned":n,"estimated_cost":x},
  ///    "timings":{"parse_seconds":x,...,"total_seconds":x},
  ///    "columns":[...], "rows":[[...],...],
  ///    "plan":"...",            // kFull only
  ///    "empty_causes":[...]}    // empty result only, kSummary and up
  /// Error responses carry "schema" and "status" only. Dates render as
  /// "YYYY-MM-DD" strings, NULLs as JSON null.
  std::string ToJson() const;

  /// The one shared human-readable rendering (status line, rows, timings,
  /// plan, causes) — what erq_shell and the examples print, and what
  /// QueryOutcome::ToString() delegates to.
  std::string ToText() const;
};

}  // namespace erq
