#pragma once

/// \file
/// EmptyResultDetector — check (§2.4), harvest (§2.3), prune (§2.5).

#include <string>
#include <vector>

#include "catalog/partition.h"
#include "common/statusor.h"
#include "core/caqp_cache.h"
#include "core/config.h"
#include "core/decompose.h"

namespace erq {

/// Outcome of checking one query against C_aqp.
struct CheckResult {
  /// The query provably returns an empty result (Theorems 1–3). No false
  /// positives: true is only returned on a complete, sound derivation.
  bool provably_empty = false;
  /// Number of atomic query parts generated from the query (the paper's
  /// combination factor F for Q1/Q2-shaped queries).
  size_t parts_checked = 0;
};

/// The fast detection engine: checks new queries against the stored
/// atomic query parts (§2.4) and harvests executed empty-result plans into
/// the collection (§2.3 / Operation O2). Implements the §2.5 extensions:
/// root aggregates are ignored for emptiness (scalar aggregates — incl.
/// count(∅)=0 — are never empty), UNION needs both branches empty, EXCEPT
/// needs its left branch empty, and LEFT OUTER JOIN needs its left input
/// empty.
///
/// Thread safety: the detector itself holds no lock — `config_` is
/// immutable after construction and all mutable state lives in `cache_`,
/// which is internally synchronized (see CaqpCache). Concurrent sessions
/// may therefore call every method on a shared detector.
class EmptyResultDetector {
 public:
  explicit EmptyResultDetector(const EmptyResultConfig& config)
      : config_(config),
        cache_(config.n_max, config.eviction, config.enable_signatures,
               config.enable_index, config.shards) {}

  /// Decides whether the logical plan provably yields an empty result
  /// using only C_aqp (plus provable unsatisfiability of a part's
  /// condition). Unsupported structures simply yield "not provably empty".
  CheckResult CheckEmpty(const LogicalOpPtr& root);

  /// Checks many plans at once: the atomic query parts of every root are
  /// gathered first, probed against C_aqp in one batched lookup (a single
  /// epoch critical section; each shard snapshot loaded at most once),
  /// then per-root verdicts are assembled. Results match CheckEmpty on
  /// each root, with one deliberate difference: `parts_checked` counts
  /// every decomposed part, because the batch probes all parts up front
  /// instead of stopping at a root's first miss.
  std::vector<CheckResult> CheckEmptyBatch(
      const std::vector<LogicalOpPtr>& roots);

  /// Harvests an executed physical plan whose result was empty: finds the
  /// lowest-level empty parts and stores their atomic query parts.
  /// Returns the number of atomic query parts inserted.
  size_t RecordEmpty(const PhysOpPtr& executed_root);

  /// Theorem 2 at (relation, partition) granularity: true when C_aqp
  /// holds a part over the partition-tagged occurrence "base@partition"
  /// whose condition covers `condition` (terms over the canonical
  /// lowercased `base`). Partition-tagged parts live in their own name
  /// space — they never cover, and are never covered by, whole-relation
  /// probes — so a hit proves the *partition's* contribution empty even
  /// when the query is globally non-empty. Counts a partition hit metric.
  bool PartitionCovered(const std::string& base, size_t partition,
                        const Conjunction& condition);

  /// Harvests per-partition observations of an executed plan: every
  /// scanned partition whose rows produced zero scan-condition matches
  /// becomes a stored part ({base@k}, condition) — ground truth the scan
  /// already paid for, recorded regardless of whether the whole query was
  /// empty. Returns the number of parts inserted.
  size_t RecordPartitionEmpties(const PhysOpPtr& executed_root);

  /// §2.5 partial detection, cases (2b)/(4): when only one branch of a set
  /// operation is provably empty, the other branch alone needs evaluation.
  /// Returns a logical plan with such branches pruned:
  ///   UNION(L, R), L provably empty  ->  R   (and symmetrically)
  ///   EXCEPT(L, R), R provably empty ->  L   (DISTINCT wraps non-ALL)
  /// `pruned` (optional) counts the branches removed. The result is
  /// semantically equivalent on the current database.
  LogicalOpPtr PrunePlan(const LogicalOpPtr& root, size_t* pruned = nullptr);

  /// The underlying C_aqp collection (mutable, internally synchronized).
  CaqpCache& cache() { return cache_; }
  /// Read-only view of the underlying C_aqp collection.
  const CaqpCache& cache() const { return cache_; }
  /// The configuration frozen at construction.
  const EmptyResultConfig& config() const { return config_; }

  /// Drops stored parts per the configured invalidation mode.
  void OnRelationUpdated(const std::string& table_name);

  /// §5 extension: insert-aware invalidation. Under kFilterIrrelevant,
  /// drops only parts the new rows could satisfy; under the other modes,
  /// behaves like OnRelationUpdated. Returns the number of parts dropped.
  size_t OnRelationInserted(const std::string& table_name,
                            const Schema& schema,
                            const std::vector<Row>& rows);

  /// Partition-aware insert invalidation: like the overload above, but
  /// additionally narrows the scope of partition-tagged parts to the
  /// partitions the rows actually land in (per `scheme`) — an insert into
  /// partition k must not invalidate knowledge recorded for partition j.
  /// Tagged parts whose partition index no longer fits the scheme are
  /// dropped as stale. Falls back to the plain overload when `scheme` is
  /// unpartitioned. Returns the number of parts dropped.
  size_t OnRelationInserted(const std::string& table_name,
                            const Schema& schema,
                            const std::vector<Row>& rows,
                            const PartitionScheme& scheme);

  /// §5 extension: deletions can never make an empty result non-empty, so
  /// under kFilterIrrelevant they invalidate nothing.
  void OnRelationDeleted(const std::string& table_name);

 private:
  /// Recursive body of CheckEmpty; the public wrapper adds metrics so
  /// sub-checks (recursion, PrunePlan probes) don't inflate the counters.
  CheckResult CheckEmptyImpl(const LogicalOpPtr& root);

  /// One SPJ leaf of a batched check. `probe_index` maps each decomposed
  /// part to its slot in the batch probe vector; unsatisfiable parts are
  /// never probed (kNotProbed) and count as covered.
  struct BatchLeaf {
    static constexpr size_t kNotProbed = static_cast<size_t>(-1);
    bool decomposed = false;
    std::vector<AtomicQueryPart> parts;
    std::vector<size_t> probe_index;
  };

  /// Pass 1 of CheckEmptyBatch: mirrors CheckEmptyImpl's traversal (same
  /// branches contribute to the verdict) but without short-circuiting, so
  /// every part that *could* be probed is gathered. Appends one BatchLeaf
  /// per SPJ subtree in deterministic traversal order and pointers to the
  /// probe-worthy parts into `probes`.
  void CollectLeaves(const LogicalOpPtr& root, std::vector<BatchLeaf>* leaves,
                     std::vector<const AtomicQueryPart*>* probes);

  /// Pass 2: re-traverses `root` in the same order, consuming leaves at
  /// `*next_leaf` and reading per-probe verdicts from `covered`.
  CheckResult EvaluateBatch(const LogicalOpPtr& root,
                            const std::vector<BatchLeaf>& leaves,
                            size_t* next_leaf,
                            const std::vector<uint8_t>& covered);

  const EmptyResultConfig config_;  // immutable: safe to read unlocked
  CaqpCache cache_;                 // internally synchronized
};

}  // namespace erq

