#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "core/atomic_query_part.h"
#include "core/config.h"
#include "core/signature.h"

namespace erq {

/// The collection C_aqp (§2.2–2.3): an in-memory store of atomic query
/// parts whose outputs are known to be empty on the current database.
///
/// Thread safety: all public methods are internally synchronized with a
/// single mutex — in an RDBMS many sessions consult C_aqp concurrently,
/// and even lookups mutate state (clock reference bits, statistics).
/// Callers owning higher-level state (EmptyResultManager's counters, the
/// catalog) must synchronize that state themselves.
///
/// Organization follows the paper: one entry per relation-name set, each
/// holding the list of selection conditions stored for that set. Entry
/// search by set containment is accelerated with superimposed-coding
/// signatures [31]. Capacity is bounded by N_max with clock replacement
/// (reference bits set on coverage hits); redundancy is removed by keeping
/// only the most general parts (covered parts are dropped on insert, and an
/// insert that is itself covered is skipped).
class CaqpCache {
 public:
  struct CacheStats {
    uint64_t lookups = 0;          // CoveredBy calls
    uint64_t hits = 0;             // CoveredBy returned true
    uint64_t conditions_scanned = 0;  // cover tests performed
    uint64_t insert_attempts = 0;
    uint64_t inserted = 0;
    uint64_t skipped_covered = 0;  // new part already covered => not stored
    uint64_t removed_covered = 0;  // stored parts displaced by a more
                                   // general new part
    uint64_t evictions = 0;
    uint64_t invalidation_drops = 0;
  };

  explicit CaqpCache(size_t n_max,
                     EvictionPolicy policy = EvictionPolicy::kClock,
                     bool enable_signatures = true)
      : n_max_(n_max), policy_(policy), enable_signatures_(enable_signatures) {}

  /// True if some stored atomic query part covers `aqp` — i.e. the output
  /// of `aqp` is provably empty (Theorem 2). Marks the covering part as
  /// recently used.
  bool CoveredBy(const AtomicQueryPart& aqp);

  /// Stores `aqp` (harvested from an empty-result query part), enforcing
  /// the redundancy and capacity rules above.
  void Insert(const AtomicQueryPart& aqp);

  /// Number of stored atomic query parts.
  size_t size() const {
    MutexLock lock(&mu_);
    return live_;
  }
  size_t n_max() const { return n_max_; }

  void Clear();

  /// Drops every stored part whose relation set mentions `base_name`
  /// (including renamed occurrences "base#k").
  void InvalidateRelation(const std::string& base_name);

  /// Drops every stored part for which `pred` returns true; returns the
  /// number dropped. Used by the irrelevant-update filter.
  size_t DropIf(const std::function<bool(const AtomicQueryPart&)>& pred);

  CacheStats stats() const {
    MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() {
    MutexLock lock(&mu_);
    stats_ = CacheStats{};
  }

  /// Copies of all live parts (tests / debugging).
  std::vector<AtomicQueryPart> Snapshot() const;

 private:
  struct Item {
    AtomicQueryPart aqp;
    bool alive = false;
    bool ref = false;        // clock reference bit
    uint64_t inserted_seq = 0;  // FIFO age
    uint64_t used_seq = 0;      // LRU age
    size_t entry_index = 0;
  };

  struct Entry {
    RelationSet relations;
    RelationSignature signature;
    std::vector<size_t> items;  // slot indices
  };

  void EvictOne() ERQ_REQUIRES(mu_);
  void RemoveItem(size_t slot) ERQ_REQUIRES(mu_);
  size_t GetOrCreateEntry(const RelationSet& relations) ERQ_REQUIRES(mu_);

  mutable Mutex mu_;

  // Configuration, immutable after construction: safe to read unlocked.
  const size_t n_max_;
  const EvictionPolicy policy_;
  const bool enable_signatures_;

  std::vector<Item> slots_ ERQ_GUARDED_BY(mu_);
  std::vector<size_t> free_slots_ ERQ_GUARDED_BY(mu_);
  std::vector<Entry> entries_ ERQ_GUARDED_BY(mu_);
  std::unordered_map<std::string, size_t> entry_index_ ERQ_GUARDED_BY(mu_);

  size_t live_ ERQ_GUARDED_BY(mu_) = 0;
  size_t clock_hand_ ERQ_GUARDED_BY(mu_) = 0;
  uint64_t seq_ ERQ_GUARDED_BY(mu_) = 0;
  CacheStats stats_ ERQ_GUARDED_BY(mu_);
};

}  // namespace erq
