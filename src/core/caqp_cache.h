#pragma once

/// \file
/// CaqpCache — the bounded, indexed, thread-safe C_aqp collection.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lock_order.h"
#include "common/thread_annotations.h"
#include "core/atomic_query_part.h"
#include "core/config.h"
#include "core/signature.h"

namespace erq {

/// The collection C_aqp (§2.2–2.3): an in-memory store of atomic query
/// parts whose outputs are known to be empty on the current database.
///
/// Thread safety: the structure is read-mostly — in an RDBMS many sessions
/// probe C_aqp for every high-cost query while inserts/invalidations are
/// comparatively rare — so it is synchronized with a reader/writer lock.
/// `CoveredBy` (and every other pure probe) takes only the shared side:
/// concurrent lookups never serialize on each other and perform zero
/// exclusive-lock acquisitions. The bookkeeping a lookup *does* mutate —
/// clock reference bits, LRU sequence numbers, statistics counters — is
/// held in relaxed atomics, which shared holders may update freely.
/// `Insert`, `InvalidateRelation`, `DropIf`, and `Clear` take the
/// exclusive side. Callers owning higher-level state (EmptyResultManager's
/// counters, the catalog) must synchronize that state themselves.
///
/// Organization follows the paper: one entry per relation-name set, each
/// holding the list of selection conditions stored for that set. Entry
/// search by set containment is sub-linear: an inverted index maps each
/// relation name to the entries mentioning it, so a lookup enumerates only
/// entries that share a name with the probe (each candidate exactly once,
/// via the posting list of its own first name) instead of scanning every
/// entry; the superimposed-coding signatures [31] remain as a second-level
/// filter before the exact subset test. Entries whose last stored part is
/// removed are garbage-collected (index keys and entry slots are reclaimed
/// through free lists), so churny invalidate/insert workloads cannot grow
/// `entries_` without bound. Capacity is bounded by N_max with clock
/// replacement (reference bits set on coverage hits); redundancy is
/// removed by keeping only the most general parts (covered parts are
/// dropped on insert, and an insert that is itself covered is skipped).
class CaqpCache {
 public:
  /// Why a stored part left the cache (passed to ChangeListener::OnRemove).
  enum class RemoveReason {
    /// Capacity eviction (clock/LRU/FIFO victim).
    kEvicted,
    /// Displaced on insert by a more general covering part.
    kDisplaced,
    /// Dropped by InvalidateRelation / DropIf after a database update.
    kInvalidated,
  };

  /// Observer of cache mutations, used by the persistence layer to
  /// journal every change. All callbacks run under the cache's exclusive
  /// lock, in mutation order (for an Insert that displaces covered parts,
  /// the OnRemove calls precede the OnInsert); implementations must be
  /// fast and must not call back into the cache.
  class ChangeListener {
   public:
    virtual ~ChangeListener() = default;
    /// `aqp` was stored.
    virtual void OnInsert(const AtomicQueryPart& aqp) = 0;
    /// `aqp` was removed for `reason`.
    virtual void OnRemove(const AtomicQueryPart& aqp, RemoveReason reason) = 0;
    /// The cache was cleared wholesale (no per-part OnRemove calls).
    virtual void OnClear() = 0;
  };

  /// Value-type snapshot of the cache's counters and gauges (see
  /// stats_snapshot()).
  struct CacheStats {
    uint64_t lookups = 0;          ///< CoveredBy calls
    uint64_t hits = 0;             ///< CoveredBy returned true
    uint64_t conditions_scanned = 0;  ///< cover tests performed
    uint64_t insert_attempts = 0;  ///< Insert calls
    uint64_t inserted = 0;         ///< parts actually stored
    uint64_t skipped_covered = 0;  ///< new part already covered => not stored
    uint64_t removed_covered = 0;  ///< stored parts displaced by a more
                                   ///< general new part
    uint64_t evictions = 0;           ///< capacity-eviction victims
    uint64_t invalidation_drops = 0;  ///< parts dropped by invalidation

    // Index instrumentation (how a lookup narrowed its search), so
    // Figure-7-style experiments can attribute speedups.
    uint64_t postings_scanned = 0;   ///< posting-list elements touched
                                     ///< (index fan-out)
    uint64_t candidate_entries = 0;  ///< entries actually considered
    uint64_t signature_rejects = 0;  ///< candidates the signature filter cut

    // Gauges sampled when stats_snapshot() is called.
    uint64_t entries_live = 0;       ///< entries currently holding parts
    uint64_t entries_allocated = 0;  ///< entry slots ever allocated (bounded
                                     ///< by GC + free-list reuse)
    uint64_t index_names = 0;        ///< distinct relation names indexed
  };

  explicit CaqpCache(size_t n_max,
                     EvictionPolicy policy = EvictionPolicy::kClock,
                     bool enable_signatures = true, bool enable_index = true)
      : n_max_(n_max),
        policy_(policy),
        enable_signatures_(enable_signatures),
        enable_index_(enable_index) {}

  /// Reconciles the global `erq.caqp.size` gauge (this instance's live
  /// parts are subtracted from the process-wide aggregate).
  ~CaqpCache();

  /// True if some stored atomic query part covers `aqp` — i.e. the output
  /// of `aqp` is provably empty (Theorem 2). Marks the covering part as
  /// recently used. Takes only the shared lock: safe to call from any
  /// number of sessions concurrently.
  bool CoveredBy(const AtomicQueryPart& aqp) ERQ_EXCLUDES(mu_);

  /// Stores `aqp` (harvested from an empty-result query part), enforcing
  /// the redundancy and capacity rules above.
  void Insert(const AtomicQueryPart& aqp) ERQ_EXCLUDES(mu_);

  /// Number of stored atomic query parts.
  size_t size() const ERQ_EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return live_;
  }
  /// Capacity bound N_max fixed at construction.
  size_t n_max() const { return n_max_; }

  /// Drops every stored part (used on database-wide invalidation).
  void Clear() ERQ_EXCLUDES(mu_);

  /// Drops every stored part whose relation set mentions `base_name`
  /// (including renamed occurrences "base#k").
  void InvalidateRelation(const std::string& base_name) ERQ_EXCLUDES(mu_);

  /// Drops every stored part for which `pred` returns true; returns the
  /// number dropped. Used by the irrelevant-update filter.
  size_t DropIf(const std::function<bool(const AtomicQueryPart&)>& pred)
      ERQ_EXCLUDES(mu_);

  /// Relaxed value-type snapshot of the counters plus index gauges — never
  /// a live reference. Counters are updated lock-free, so a snapshot taken
  /// while lookups are in flight is approximate (each counter is
  /// individually accurate). The same counters are mirrored, aggregated
  /// across instances, into MetricsRegistry::Global() as `erq.caqp.*`.
  CacheStats stats_snapshot() const ERQ_EXCLUDES(mu_);
  /// Zeroes every counter (gauges are recomputed on the next snapshot).
  void ResetStats();

  /// Human-readable description of the cache internals: occupancy, index
  /// shape (posting-list fan-out), and per-lookup work averages.
  std::string Explain() const ERQ_EXCLUDES(mu_);

  /// Copies of all live parts (tests / debugging).
  std::vector<AtomicQueryPart> Snapshot() const ERQ_EXCLUDES(mu_);

  /// Installs (or, with nullptr, detaches) the mutation observer. The
  /// caller owns `listener` and must keep it alive until it is detached
  /// or the cache is destroyed; the swap itself takes the exclusive lock,
  /// so no callback is in flight once SetChangeListener returns.
  void SetChangeListener(ChangeListener* listener) ERQ_EXCLUDES(mu_);

 private:
  struct Item {
    AtomicQueryPart aqp;
    bool alive = false;
    uint64_t inserted_seq = 0;  // FIFO age
    size_t entry_index = 0;
    // Recency bookkeeping mutated by lookups under the *shared* lock:
    // mutable relaxed atomics, so the reader path stays const. Plain
    // members above are only written under the exclusive lock.
    mutable std::atomic<bool> ref{false};        // clock reference bit
    mutable std::atomic<uint64_t> used_seq{0};   // LRU age

    Item() = default;
    // slots_ only grows on the writer path (exclusive lock held), so
    // moving items for vector growth never races with readers.
    Item(Item&& other) noexcept
        : aqp(std::move(other.aqp)),
          alive(other.alive),
          inserted_seq(other.inserted_seq),
          entry_index(other.entry_index),
          ref(other.ref.load(std::memory_order_relaxed)),
          used_seq(other.used_seq.load(std::memory_order_relaxed)) {}
    Item& operator=(Item&& other) noexcept {
      aqp = std::move(other.aqp);
      alive = other.alive;
      inserted_seq = other.inserted_seq;
      entry_index = other.entry_index;
      ref.store(other.ref.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
      used_seq.store(other.used_seq.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      return *this;
    }
  };

  struct Entry {
    bool alive = false;
    RelationSet relations;
    RelationSignature signature;
    std::vector<size_t> items;  // slot indices
  };

  /// Per-lookup work tally, accumulated locally and flushed to the atomic
  /// counters once per call (cheaper than per-candidate fetch_adds).
  struct LookupWork {
    uint64_t postings = 0;
    uint64_t candidates = 0;
    uint64_t signature_rejects = 0;
    uint64_t conditions = 0;
  };

  /// Mirror of the counter half of CacheStats in relaxed atomics, so the
  /// lookup path updates statistics without any lock.
  struct AtomicCounters {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> conditions_scanned{0};
    std::atomic<uint64_t> insert_attempts{0};
    std::atomic<uint64_t> inserted{0};
    std::atomic<uint64_t> skipped_covered{0};
    std::atomic<uint64_t> removed_covered{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> invalidation_drops{0};
    std::atomic<uint64_t> postings_scanned{0};
    std::atomic<uint64_t> candidate_entries{0};
    std::atomic<uint64_t> signature_rejects{0};
  };

  static constexpr size_t kNoEntry = static_cast<size_t>(-1);

  /// Core subset search (stored set ⊆ probe set), shared-lock safe: finds
  /// a stored part covering `aqp`, marks it recently used, and returns
  /// true. Mutates only the mutable atomics.
  bool FindCoveringLocked(const AtomicQueryPart& aqp,
                          const RelationSignature& query_sig,
                          LookupWork* work) const ERQ_REQUIRES_SHARED(mu_);
  bool EntryCoversLocked(const Entry& entry, const AtomicQueryPart& aqp,
                         const RelationSignature& query_sig,
                         LookupWork* work) const ERQ_REQUIRES_SHARED(mu_);

  /// Ids of entries whose relation set could be a superset of `relations`
  /// (every superset entry posts under each of `relations`' names, so the
  /// rarest name's posting list suffices). Copied out because the caller
  /// mutates the index while processing.
  std::vector<size_t> SupersetCandidatesLocked(
      const RelationSet& relations) const ERQ_REQUIRES(mu_);

  void EvictOneLocked() ERQ_REQUIRES(mu_);
  void RemoveItemLocked(size_t slot) ERQ_REQUIRES(mu_);
  /// Drops every item of entry `idx`, counting them as invalidations, then
  /// garbage-collects the entry.
  void DropEntryItemsLocked(size_t idx) ERQ_REQUIRES(mu_);
  /// Unlinks a now-empty entry from entry_index_ and the inverted index
  /// and recycles its slot.
  void RemoveEntryLocked(size_t idx) ERQ_REQUIRES(mu_);
  size_t GetOrCreateEntryLocked(const RelationSet& relations)
      ERQ_REQUIRES(mu_);

  // Exclusive holders call the persistence listener (OnInsert/OnRemove/
  // OnClear journal under Persistence::mu_), hence ACQUIRED_BEFORE.
  mutable SharedMutex mu_ ERQ_ACQUIRED_AFTER(lock_order::kCaqpCache)
      ERQ_ACQUIRED_BEFORE(lock_order::kPersistence){lock_order::kCaqpCache};

  // Configuration, immutable after construction: safe to read unlocked.
  const size_t n_max_;
  const EvictionPolicy policy_;
  const bool enable_signatures_;
  const bool enable_index_;

  std::vector<Item> slots_ ERQ_GUARDED_BY(mu_);
  std::vector<size_t> free_slots_ ERQ_GUARDED_BY(mu_);
  std::vector<Entry> entries_ ERQ_GUARDED_BY(mu_);
  std::vector<size_t> free_entries_ ERQ_GUARDED_BY(mu_);
  std::unordered_map<std::string, size_t> entry_index_ ERQ_GUARDED_BY(mu_);

  // Inverted index: relation name -> ids of live entries mentioning it.
  // A stored set is a subset of a probe set only if all of its names — in
  // particular its first one — appear among the probe's names, so walking
  // the probe names' posting lists and keeping entries whose first name
  // matches the posted name enumerates each candidate exactly once.
  std::unordered_map<std::string, std::vector<size_t>> postings_
      ERQ_GUARDED_BY(mu_);
  // The (at most one) entry with an empty relation set posts nowhere but
  // is a subset of everything, so it is tracked separately.
  size_t empty_rel_entry_ ERQ_GUARDED_BY(mu_) = kNoEntry;

  ChangeListener* listener_ ERQ_GUARDED_BY(mu_) = nullptr;
  size_t live_ ERQ_GUARDED_BY(mu_) = 0;
  size_t clock_hand_ ERQ_GUARDED_BY(mu_) = 0;
  // Global recency clock, bumped by lookups on hits: lock-free.
  mutable std::atomic<uint64_t> seq_{0};
  mutable AtomicCounters counters_;
};

}  // namespace erq
