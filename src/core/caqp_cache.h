#pragma once

/// \file
/// CaqpCache — the bounded, sharded, epoch-protected C_aqp collection.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/epoch.h"
#include "common/lock_order.h"
#include "common/thread_annotations.h"
#include "core/atomic_query_part.h"
#include "core/config.h"
#include "core/signature.h"

namespace erq {

/// The collection C_aqp (§2.2–2.3): an in-memory store of atomic query
/// parts whose outputs are known to be empty on the current database.
///
/// Thread safety: the structure is read-mostly — in an RDBMS many sessions
/// probe C_aqp for every high-cost query while inserts/invalidations are
/// comparatively rare — so the two sides are synchronized differently:
///
///   * Lookups (`CoveredBy`, `CoveredByBatch`, `Snapshot`) take NO lock at
///     all. Each shard publishes an immutable index snapshot behind an
///     atomic pointer; a reader enters an epoch (common/epoch.h), walks the
///     published snapshots, and exits. Writers retire replaced snapshots
///     through the epoch domain, so readers never touch freed memory and
///     concurrent lookups never serialize on anything but their own
///     cache-line-striped epoch counters. The bookkeeping a lookup does
///     mutate — clock reference bits, LRU sequence numbers, statistics —
///     lives in relaxed atomics shared between the writer state and every
///     published snapshot, so recency survives republication.
///   * Mutators (`Insert`, `InvalidateRelation`, `DropIf`) hash each entry
///     to one of `shards` independent shards (by the entry's first relation
///     name) and take only that shard's mutex plus the *shared* side of a
///     cache-wide maintenance gate; mutations of different shards run in
///     parallel. `Clear` and `SetChangeListener` take the gate exclusively,
///     so they are atomic with respect to every in-flight mutation (the
///     persistence journal and memory can never diverge across a Clear).
///
/// Organization follows the paper: one entry per relation-name set, each
/// holding the list of selection conditions stored for that set. An entry
/// resides in the shard of its first (lexicographically smallest) relation
/// name; since a stored set ⊆ probe set always contains its own first
/// name, probing the shards of the probe's names finds every candidate
/// exactly once. Within a shard, entry search is sub-linear: the published
/// index maps each first name to the entries residing under it, and the
/// superimposed-coding signatures [31] remain as a second-level filter
/// before the exact subset test. Entries whose last stored part is removed
/// are garbage-collected (index keys and entry slots are reclaimed through
/// per-shard free lists), so churny invalidate/insert workloads cannot
/// grow the entry table without bound. Capacity is bounded by N_max across
/// all shards: every Insert returns only once the cache is back within
/// N_max, but because mutators hold one shard lock at a time (never a
/// global exclusive lock), concurrent in-flight inserts may transiently
/// overshoot the bound by at most one part each. Replacement is clock
/// (reference bits set on coverage hits), LRU, or FIFO; redundancy is
/// removed by keeping only the most general parts
/// (covered parts are dropped on insert, and an insert that is itself
/// covered is skipped).
class CaqpCache {
 public:
  /// Why a stored part left the cache (passed to ChangeListener::OnRemove).
  enum class RemoveReason {
    /// Capacity eviction (clock/LRU/FIFO victim).
    kEvicted,
    /// Displaced on insert by a more general covering part.
    kDisplaced,
    /// Dropped by InvalidateRelation / DropIf after a database update.
    kInvalidated,
  };

  /// Observer of cache mutations, used by the persistence layer to
  /// journal every change. Callbacks run under the owning shard's lock (a
  /// part's shard is a pure function of the part, so callbacks for any one
  /// part are serialized and arrive in mutation order — for an Insert that
  /// displaces covered parts, the OnRemove calls precede the OnInsert).
  /// Callbacks for parts of *different* shards may interleave; OnClear
  /// runs under the cache's exclusive maintenance gate, so no other
  /// callback is in flight around it. Implementations must be fast and
  /// must not call back into the cache.
  class ChangeListener {
   public:
    virtual ~ChangeListener() = default;
    /// `aqp` was stored.
    virtual void OnInsert(const AtomicQueryPart& aqp) = 0;
    /// `aqp` was removed for `reason`.
    virtual void OnRemove(const AtomicQueryPart& aqp, RemoveReason reason) = 0;
    /// The cache was cleared wholesale (no per-part OnRemove calls).
    virtual void OnClear() = 0;
  };

  /// Value-type snapshot of the cache's counters and gauges (see
  /// stats_snapshot()).
  struct CacheStats {
    uint64_t lookups = 0;          ///< CoveredBy calls (batch: one per part)
    uint64_t hits = 0;             ///< CoveredBy returned true
    uint64_t conditions_scanned = 0;  ///< cover tests performed
    uint64_t insert_attempts = 0;  ///< Insert calls
    uint64_t inserted = 0;         ///< parts actually stored
    uint64_t skipped_covered = 0;  ///< new part already covered => not stored
    uint64_t removed_covered = 0;  ///< stored parts displaced by a more
                                   ///< general new part
    uint64_t evictions = 0;           ///< capacity-eviction victims
    uint64_t invalidation_drops = 0;  ///< parts dropped by invalidation

    // Index instrumentation (how a lookup narrowed its search), so
    // Figure-7-style experiments can attribute speedups.
    uint64_t postings_scanned = 0;   ///< posting-list elements touched
                                     ///< (index fan-out)
    uint64_t candidate_entries = 0;  ///< entries actually considered
    uint64_t signature_rejects = 0;  ///< candidates the signature filter cut

    // Gauges sampled when stats_snapshot() is called.
    uint64_t entries_live = 0;       ///< entries currently holding parts
    uint64_t entries_allocated = 0;  ///< entry slots ever allocated (bounded
                                     ///< by GC + free-list reuse, summed
                                     ///< over shards)
    uint64_t index_names = 0;        ///< distinct relation names indexed
    uint64_t shards = 0;             ///< shard count (fixed at construction)
    uint64_t shard_max_live = 0;     ///< parts in the fullest shard
    uint64_t epoch_pending = 0;      ///< retired snapshots not yet reclaimed
  };

  /// Default shard count: enough to keep 8 writer threads from colliding
  /// while the per-shard index stays dense. `shards=1` is the unsharded
  /// ablation baseline.
  static constexpr size_t kDefaultShards = 8;

  explicit CaqpCache(size_t n_max,
                     EvictionPolicy policy = EvictionPolicy::kClock,
                     bool enable_signatures = true, bool enable_index = true,
                     size_t shards = kDefaultShards);

  /// Reconciles the global `erq.caqp.size` gauge (this instance's live
  /// parts are subtracted from the process-wide aggregate) and reclaims
  /// every retired snapshot. No lookup may be in flight.
  ~CaqpCache();

  /// True if some stored atomic query part covers `aqp` — i.e. the output
  /// of `aqp` is provably empty (Theorem 2). Marks the covering part as
  /// recently used. Lock-free: runs inside an epoch critical section over
  /// the published shard snapshots, so any number of sessions probe
  /// concurrently without serializing.
  bool CoveredBy(const AtomicQueryPart& aqp);

  /// Batched CoveredBy: answers every probe in `aqps` inside a single
  /// epoch critical section, loading each shard's published snapshot at
  /// most once and flushing statistics once, so the per-probe overhead
  /// amortizes across the batch. Element i of the result is nonzero iff
  /// CoveredBy(*aqps[i]) would return true; covering parts are marked
  /// recently used exactly as in CoveredBy, and every probe counts as one
  /// lookup in the statistics.
  std::vector<uint8_t> CoveredByBatch(
      const std::vector<const AtomicQueryPart*>& aqps);

  /// Stores `aqp` (harvested from an empty-result query part), enforcing
  /// the redundancy and capacity rules above. Takes the shared maintenance
  /// gate plus one shard lock at a time.
  void Insert(const AtomicQueryPart& aqp) ERQ_EXCLUDES(maint_mu_);

  /// Number of stored atomic query parts (all shards).
  size_t size() const {
    return live_total_.load(std::memory_order_relaxed);
  }
  /// Capacity bound N_max fixed at construction.
  size_t n_max() const { return n_max_; }
  /// Number of shards fixed at construction.
  size_t shard_count() const { return shard_count_; }

  /// Drops every stored part (used on database-wide invalidation).
  /// Exclusive: waits for in-flight mutators, so the change-listener
  /// journal observes the clear atomically.
  void Clear() ERQ_EXCLUDES(maint_mu_);

  /// Drops every stored part whose relation set mentions `base_name`
  /// (including renamed occurrences "base#k").
  void InvalidateRelation(const std::string& base_name)
      ERQ_EXCLUDES(maint_mu_);

  /// Drops every stored part for which `pred` returns true; returns the
  /// number dropped. Used by the irrelevant-update filter.
  size_t DropIf(const std::function<bool(const AtomicQueryPart&)>& pred)
      ERQ_EXCLUDES(maint_mu_);

  /// Relaxed value-type snapshot of the counters plus index gauges — never
  /// a live reference. Counters are updated lock-free, so a snapshot taken
  /// while lookups are in flight is approximate (each counter is
  /// individually accurate). The same counters are mirrored, aggregated
  /// across instances, into MetricsRegistry::Global() as `erq.caqp.*`;
  /// sampling here also refreshes the `erq.caqp.epoch.*` and
  /// `erq.caqp.shard_imbalance` gauges.
  CacheStats stats_snapshot() const;
  /// Zeroes every counter (gauges are recomputed on the next snapshot).
  void ResetStats();

  /// Human-readable description of the cache internals: occupancy, index
  /// shape (posting-list fan-out), and per-lookup work averages.
  std::string Explain() const;

  /// Copies of all live parts (tests / debugging). Reads the published
  /// snapshots under an epoch guard, so it is safe concurrently with
  /// mutators; with no mutator in flight it is exact.
  std::vector<AtomicQueryPart> Snapshot() const;

  /// Installs (or, with nullptr, detaches) the mutation observer. The
  /// caller owns `listener` and must keep it alive until it is detached
  /// or the cache is destroyed; the swap takes the exclusive maintenance
  /// gate, so no callback is in flight once SetChangeListener returns.
  void SetChangeListener(ChangeListener* listener) ERQ_EXCLUDES(maint_mu_);

 private:
  static constexpr size_t kNoEntry = static_cast<size_t>(-1);

  /// One stored condition, shared between the writer-side slot table and
  /// every published snapshot that mentions it, so the recency bits a
  /// lookup sets survive republication and stay visible to the evictor.
  struct PubItem {
    AtomicQueryPart aqp;
    uint64_t inserted_seq = 0;  // FIFO age, fixed at insert
    // Recency bookkeeping mutated by lock-free lookups: relaxed atomics,
    // mutable so the reader path stays const.
    mutable std::atomic<bool> ref{false};       // clock reference bit
    mutable std::atomic<uint64_t> used_seq{0};  // LRU age
  };
  using PubItemPtr = std::shared_ptr<PubItem>;
  using ItemVec = std::vector<PubItemPtr>;

  /// Reader-visible face of one entry. The object is stable for the
  /// entry's lifetime (the shard index only changes when entries are
  /// created or garbage-collected); item-level changes swap the `items`
  /// pointer and epoch-retire the old vector, so the common mutation —
  /// adding or dropping one condition of an existing relation set — never
  /// rebuilds the shard index. The destructor (which runs only after
  /// every snapshot naming the entry has been reclaimed) frees the final
  /// vector.
  struct PublishedEntry {
    RelationSet relations;
    RelationSignature signature;
    std::atomic<const ItemVec*> items{nullptr};
    ~PublishedEntry() { delete items.load(std::memory_order_relaxed); }
  };
  using PublishedEntryPtr = std::shared_ptr<PublishedEntry>;

  /// Immutable per-shard index snapshot readers walk under an epoch
  /// guard. Replaced wholesale (and the predecessor epoch-retired) when
  /// the shard's entry membership changes.
  struct ShardIndex {
    // First relation name -> entries residing under it. Keyed by first
    // name only: an entry is a candidate for a probe name exactly when it
    // resides under that name, so no per-posting filter is needed.
    std::unordered_map<std::string, std::vector<PublishedEntryPtr>> postings;
    // The (at most one, shard 0 only) entry over the empty relation set:
    // a subset of everything, posted nowhere.
    PublishedEntryPtr empty_rel_entry;
    // Every live entry, for the enable_index=false linear-scan ablation
    // and Snapshot().
    std::vector<PublishedEntryPtr> entries;
  };

  /// Writer-side slot for one stored condition.
  struct Item {
    PubItemPtr part;  // null when the slot is free
    bool alive = false;
    size_t entry_index = 0;
  };

  /// Writer-side entry state.
  struct Entry {
    bool alive = false;
    RelationSet relations;
    RelationSignature signature;
    std::vector<size_t> items;  // slot indices
    PublishedEntryPtr pub;      // the stable reader-visible face
  };

  /// One independent shard: writer state under `mu`, reader state behind
  /// `published`. An entry resides in the shard of its first relation
  /// name (ShardOf); the writer-side `postings` maps *every* name of a
  /// resident entry to it (superset search and invalidation need all
  /// names), while the published index is keyed by first name only.
  struct Shard {
    mutable Mutex mu ERQ_ACQUIRED_AFTER(lock_order::kCaqpShard)
        ERQ_ACQUIRED_BEFORE(lock_order::kEpoch,
                            lock_order::kPersistence){lock_order::kCaqpShard};
    std::vector<Item> slots ERQ_GUARDED_BY(mu);
    std::vector<size_t> free_slots ERQ_GUARDED_BY(mu);
    std::vector<Entry> entries ERQ_GUARDED_BY(mu);
    std::vector<size_t> free_entries ERQ_GUARDED_BY(mu);
    std::unordered_map<std::string, size_t> entry_index ERQ_GUARDED_BY(mu);
    std::unordered_map<std::string, std::vector<size_t>> postings
        ERQ_GUARDED_BY(mu);
    size_t empty_rel_entry ERQ_GUARDED_BY(mu) = kNoEntry;
    size_t live ERQ_GUARDED_BY(mu) = 0;  // parts resident in this shard
    size_t clock_hand ERQ_GUARDED_BY(mu) = 0;
    // The published snapshot; never null after construction. Writers
    // exchange under `mu` and epoch-retire the predecessor; readers load
    // (acquire) inside an epoch critical section.
    std::atomic<const ShardIndex*> published{nullptr};
  };

  /// Per-lookup work tally, accumulated locally and flushed to the atomic
  /// counters once per call (cheaper than per-candidate fetch_adds).
  struct LookupWork {
    uint64_t postings = 0;
    uint64_t candidates = 0;
    uint64_t signature_rejects = 0;
    uint64_t conditions = 0;
  };

  /// Mirror of the counter half of CacheStats in relaxed atomics, so the
  /// lookup path updates statistics without any lock.
  struct AtomicCounters {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> conditions_scanned{0};
    std::atomic<uint64_t> insert_attempts{0};
    std::atomic<uint64_t> inserted{0};
    std::atomic<uint64_t> skipped_covered{0};
    std::atomic<uint64_t> removed_covered{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> invalidation_drops{0};
    std::atomic<uint64_t> postings_scanned{0};
    std::atomic<uint64_t> candidate_entries{0};
    std::atomic<uint64_t> signature_rejects{0};
  };

  /// Shard of a relation name / of an entry's relation set (its first
  /// name; the empty set lives in shard 0).
  size_t ShardOf(const std::string& name) const;
  size_t ShardOfSet(const RelationSet& relations) const;

  // ---- lock-free read path (requires an epoch critical section) --------

  /// Core subset search over the published snapshots: finds a stored part
  /// covering `aqp`, marks it recently used, and returns true. `loaded`
  /// (size shard_count_) caches each shard's snapshot pointer across the
  /// probes of one batch; single lookups pass nullptr and load directly.
  bool FindCoveringPublished(const AtomicQueryPart& aqp,
                             const RelationSignature& query_sig,
                             LookupWork* work,
                             std::vector<const ShardIndex*>* loaded) const;
  bool EntryCoversPublished(const PublishedEntry& entry,
                            const AtomicQueryPart& aqp,
                            const RelationSignature& query_sig,
                            LookupWork* work) const;
  const ShardIndex* LoadIndex(size_t shard_id,
                              std::vector<const ShardIndex*>* loaded) const;

  // ---- writer path ------------------------------------------------------

  /// Shard-local redundancy check under the target shard's lock, against
  /// writer state (the lock-free pre-check can race a concurrent insert of
  /// the same part; exact duplicates always hash to the same shard, so
  /// this recheck is what keeps the persistence mirror duplicate-free).
  bool ShardCoversLocked(const Shard& shard, const AtomicQueryPart& aqp,
                         const RelationSignature& query_sig) const
      ERQ_REQUIRES(shard.mu);
  bool EntryCoversLocked(const Shard& shard, const Entry& entry,
                         const AtomicQueryPart& aqp,
                         const RelationSignature& query_sig) const
      ERQ_REQUIRES(shard.mu);

  /// Ids of this shard's entries whose relation set could be a superset of
  /// `relations` (every superset entry posts under each of `relations`'
  /// names, so the rarest name's posting list suffices; a name absent from
  /// this shard's postings means no resident superset). Copied out because
  /// the caller mutates the index while processing.
  std::vector<size_t> SupersetCandidatesLocked(
      const Shard& shard, const RelationSet& relations) const
      ERQ_REQUIRES(shard.mu);

  /// Evicts one part from some shard, honoring the global policy: clock
  /// rotates a shard hand and sweeps per-shard clocks; LRU/FIFO scan all
  /// shards for the globally oldest part, then re-lock its shard to evict
  /// it. Returns false when every shard is empty (callers' capacity loops
  /// terminate). Locks one shard at a time; callers must hold none.
  bool EvictOneGlobal() ERQ_REQUIRES_SHARED(maint_mu_);
  /// One bounded clock revolution over `shard`; true if a victim fell.
  bool EvictClockLocked(Shard& shard) ERQ_REQUIRES_SHARED(maint_mu_)
      ERQ_REQUIRES(shard.mu);
  /// Age of shard's oldest part under LRU/FIFO, and its slot.
  bool OldestInShardLocked(const Shard& shard, uint64_t* age,
                           size_t* slot) const ERQ_REQUIRES(shard.mu);

  void RemoveItemLocked(Shard& shard, size_t slot, RemoveReason reason)
      ERQ_REQUIRES_SHARED(maint_mu_) ERQ_REQUIRES(shard.mu);
  /// Drops every item of entry `idx`, counting them as invalidations, then
  /// garbage-collects the entry.
  void DropEntryItemsLocked(Shard& shard, size_t idx)
      ERQ_REQUIRES_SHARED(maint_mu_) ERQ_REQUIRES(shard.mu);
  /// Unlinks a now-empty entry from the shard's entry_index and inverted
  /// index and recycles its slot. The caller republishes.
  void RemoveEntryLocked(Shard& shard, size_t idx) ERQ_REQUIRES(shard.mu);
  /// Finds or creates the shard-resident entry for `relations`; sets
  /// `*created` so the caller knows the membership changed (and must
  /// RebuildIndexLocked before releasing the shard lock).
  size_t GetOrCreateEntryLocked(Shard& shard, const RelationSet& relations,
                                bool* created) ERQ_REQUIRES(shard.mu);

  /// Swaps entry `pub->items` to match the writer-side item list and
  /// epoch-retires the replaced vector (item-only change: the shard index
  /// itself is untouched).
  void RepublishEntryItemsLocked(Shard& shard, Entry& entry)
      ERQ_REQUIRES(shard.mu);
  /// Rebuilds and publishes the shard's index snapshot from writer state
  /// and epoch-retires the predecessor (entry membership changed).
  void RebuildIndexLocked(Shard& shard) ERQ_REQUIRES(shard.mu);

  // Configuration, immutable after construction: safe to read unlocked.
  const size_t n_max_;
  const EvictionPolicy policy_;
  const bool enable_signatures_;
  const bool enable_index_;
  const size_t shard_count_;

  // The cache-wide maintenance gate. Per-shard mutators hold the READER
  // side (so they run in parallel); Clear and SetChangeListener hold the
  // WRITER side, making them atomic against every mutation — the
  // persistence journal can never interleave an insert into a clear.
  // Exclusive/shared holders call the persistence listener (OnInsert/
  // OnRemove/OnClear journal under Persistence::mu_), hence
  // ACQUIRED_BEFORE both the shard rank and persistence.
  mutable SharedMutex maint_mu_ ERQ_ACQUIRED_AFTER(lock_order::kCaqpCache)
      ERQ_ACQUIRED_BEFORE(lock_order::kCaqpShard,
                          lock_order::kPersistence){lock_order::kCaqpCache};

  std::vector<Shard> shards_;
  ChangeListener* listener_ ERQ_GUARDED_BY(maint_mu_) = nullptr;

  // Live parts across all shards (the capacity loops' lock-free view).
  std::atomic<size_t> live_total_{0};
  // Which shard the next clock eviction starts from (round-robin).
  std::atomic<size_t> evict_hand_{0};
  // Global recency clock, bumped by lookups on hits: lock-free.
  mutable std::atomic<uint64_t> seq_{0};
  mutable AtomicCounters counters_;
  // Reclamation domain for published snapshots and item vectors.
  mutable EpochManager epoch_;
};

}  // namespace erq
