#pragma once

/// \file
/// Superimposed-coding signatures [31] — the C_aqp entry prefilter.

#include <cstdint>

#include "core/atomic_query_part.h"

namespace erq {

/// 64-bit superimposed-coding signature of a relation set, after the set
/// containment signatures of Ramasamy et al. [31] the paper uses to speed
/// up the "which entries have R_N ⊆ / ⊇ this set" search in C_aqp.
///
/// Each relation name sets k bits. The filter is one-sided:
///   MaybeSubsetOf(a, b) == false  =>  a ⊄ b  (definitely not a subset);
///   true only means "possibly".
class RelationSignature {
 public:
  RelationSignature() = default;

  /// Computes the signature of `relations` (k bits set per name).
  static RelationSignature Of(const RelationSet& relations);

  /// The raw 64-bit signature word.
  uint64_t bits() const { return bits_; }

  /// Necessary condition for "this set ⊆ other set".
  bool MaybeSubsetOf(const RelationSignature& other) const {
    return (bits_ & ~other.bits_) == 0;
  }

  /// Necessary condition for "this set ⊇ other set".
  bool MaybeSupersetOf(const RelationSignature& other) const {
    return (other.bits_ & ~bits_) == 0;
  }

 private:
  static constexpr int kBitsPerName = 2;
  uint64_t bits_ = 0;
};

}  // namespace erq

