#pragma once

/// \file
/// Atomic query parts (§2.1): the unit of knowledge stored in C_aqp.

#include <string>
#include <vector>

#include "expr/primitive.h"

namespace erq {

/// A sorted, deduplicated set of canonical relation names (lowercased;
/// repeated occurrences of a table within one query part are renamed
/// "name#2", "name#3", ... per §2.1).
class RelationSet {
 public:
  RelationSet() = default;
  explicit RelationSet(std::vector<std::string> names);

  /// The sorted, unique, lowercase occurrence names.
  const std::vector<std::string>& names() const { return names_; }
  /// Number of relation occurrences.
  size_t size() const { return names_.size(); }
  /// True when no relation occurrence is present.
  bool empty() const { return names_.empty(); }

  /// True if `name` is one of the occurrence names (exact match).
  bool Contains(const std::string& name) const;

  /// True if every relation here also appears in `other` (R_N ⊆ R_N').
  bool IsSubsetOf(const RelationSet& other) const;

  bool operator==(const RelationSet& other) const {
    return names_ == other.names_;
  }

  /// Canonical key ("a,b,c") for hashing / entry lookup.
  std::string Key() const;
  /// Hash of Key(), suitable for unordered containers.
  size_t Hash() const;
  /// Debug rendering, e.g. "{a, b#2}".
  std::string ToString() const;

 private:
  std::vector<std::string> names_;  // sorted, unique, lowercase
};

/// The paper's central object (§2.1): an ordered pair
/// (relation names R_N, selection condition S_C) denoting
/// sigma_{S_C}( product of R_N ). The stored parts in C_aqp all have empty
/// output on the current database.
class AtomicQueryPart {
 public:
  AtomicQueryPart() = default;
  AtomicQueryPart(RelationSet relations, Conjunction condition)
      : relations_(std::move(relations)), condition_(std::move(condition)) {}

  /// R_N: the canonical relation-occurrence set.
  const RelationSet& relations() const { return relations_; }
  /// S_C: the selection condition (a conjunction of primitive terms).
  const Conjunction& condition() const { return condition_; }

  /// Theorem 2 premise: this covers other iff R_N ⊆ R_N' and S_C covers
  /// S_C'. If the output of a covering part is empty, the covered part's
  /// output is empty too.
  ///
  /// Extension beyond the paper (sound): occurrence remapping. Canonical
  /// occurrence names ("a", "a#2", ...) are assigned per part, so a stored
  /// part about occurrence "a" semantically applies to any occurrence of
  /// the same base table in the query part. When the literal check fails
  /// and the query part has repeated occurrences, a bounded number of
  /// injective occurrence reassignments of this part's relations are tried
  /// (renaming occurrences of the same base table preserves the part's
  /// semantics, so any successful mapping is a valid Theorem-2 witness).
  /// The paper accepts the capability loss instead (§2.1); we recover most
  /// of it at negligible cost.
  bool Covers(const AtomicQueryPart& other) const;

  /// True when the condition can never hold (the part is empty on any
  /// database — detectable without any stored information).
  bool ProvablyUnsatisfiable() const { return condition_.unsatisfiable(); }

  /// Structural equality of relation set and condition (not semantic
  /// equivalence — use Covers() both ways for that).
  bool Equals(const AtomicQueryPart& other) const {
    return relations_ == other.relations_ &&
           condition_.Equals(other.condition_);
  }

  /// Structural hash consistent with Equals().
  size_t Hash() const;
  /// Debug rendering: relations + condition.
  std::string ToString() const;

 private:
  RelationSet relations_;
  Conjunction condition_;
};

}  // namespace erq

