#include "core/serialize.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/metrics.h"
#include "common/string_util.h"

namespace erq {

namespace {

const char kHexDigits[] = "0123456789abcdef";

std::string EncodeString(const std::string& s) {
  std::string out;
  out.reserve(s.size() * 2);
  for (unsigned char c : s) {
    out.push_back(kHexDigits[c >> 4]);
    out.push_back(kHexDigits[c & 15]);
  }
  return out;
}

StatusOr<std::string> DecodeString(const std::string& hex) {
  if (hex.size() % 2 != 0) return Status::ParseError("odd hex length");
  std::string out;
  out.reserve(hex.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return Status::ParseError("bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

StatusOr<std::string> EncodeValue(const Value& v) {
  switch (v.type()) {
    case DataType::kInt64:
      return "i:" + std::to_string(v.AsInt());
    case DataType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "d:%.17g", v.AsDouble());
      return std::string(buf);
    }
    case DataType::kString:
      return "s:" + EncodeString(v.AsString());
    case DataType::kDate:
      return "t:" + std::to_string(v.AsDate());
    case DataType::kNull:
      return Status::NotSupported("NULL values do not occur in terms");
  }
  return Status::Internal("bad value type");
}

StatusOr<Value> DecodeValue(const std::string& s) {
  if (s.size() < 2 || s[1] != ':') {
    return Status::ParseError("bad value encoding '" + s + "'");
  }
  std::string body = s.substr(2);
  switch (s[0]) {
    case 'i':
      return Value::Int(std::strtoll(body.c_str(), nullptr, 10));
    case 'd':
      return Value::Double(std::strtod(body.c_str(), nullptr));
    case 's': {
      ERQ_ASSIGN_OR_RETURN(std::string decoded, DecodeString(body));
      return Value::String(std::move(decoded));
    }
    case 't':
      return Value::Date(
          static_cast<int32_t>(std::strtol(body.c_str(), nullptr, 10)));
    default:
      return Status::ParseError("unknown value tag in '" + s + "'");
  }
}

StatusOr<ColumnId> DecodeColumn(const std::string& s) {
  size_t dot = s.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == s.size()) {
    return Status::ParseError("bad column '" + s + "'");
  }
  return ColumnId::Make(s.substr(0, dot), s.substr(dot + 1));
}

StatusOr<CompareOp> DecodeOp(const std::string& s) {
  if (s == "=") return CompareOp::kEq;
  if (s == "<>") return CompareOp::kNe;
  if (s == "<") return CompareOp::kLt;
  if (s == "<=") return CompareOp::kLe;
  if (s == ">") return CompareOp::kGt;
  if (s == ">=") return CompareOp::kGe;
  return Status::ParseError("bad compare op '" + s + "'");
}

StatusOr<std::string> EncodeTerm(const PrimitiveTerm& term) {
  switch (term.kind()) {
    case PrimitiveTerm::Kind::kInterval: {
      const ValueInterval& iv = term.interval();
      std::string out = "iv " + term.column().ToString();
      if (iv.lo.has_value()) {
        ERQ_ASSIGN_OR_RETURN(std::string v, EncodeValue(*iv.lo));
        out += iv.lo_inclusive ? " ge " : " gt ";
        out += v;
      } else {
        out += " none";
      }
      if (iv.hi.has_value()) {
        ERQ_ASSIGN_OR_RETURN(std::string v, EncodeValue(*iv.hi));
        out += iv.hi_inclusive ? " le " : " lt ";
        out += v;
      } else {
        out += " none";
      }
      return out;
    }
    case PrimitiveTerm::Kind::kNotEqual: {
      ERQ_ASSIGN_OR_RETURN(std::string v, EncodeValue(term.value()));
      return "ne " + term.column().ToString() + " " + v;
    }
    case PrimitiveTerm::Kind::kColCol:
      return "cc " + term.column().ToString() + " " +
             CompareOpToString(term.compare_op()) + " " +
             term.rhs_column().ToString();
    case PrimitiveTerm::Kind::kOpaque:
      return Status::NotSupported("opaque terms are not serializable");
  }
  return Status::Internal("bad term kind");
}

StatusOr<PrimitiveTerm> DecodeTerm(const std::string& text) {
  std::istringstream in(text);
  std::string kind;
  in >> kind;
  if (kind == "iv") {
    std::string col_text;
    in >> col_text;
    ERQ_ASSIGN_OR_RETURN(ColumnId col, DecodeColumn(col_text));
    ValueInterval iv;
    std::string lo_kind;
    in >> lo_kind;
    if (lo_kind != "none") {
      std::string v;
      in >> v;
      ERQ_ASSIGN_OR_RETURN(Value lo, DecodeValue(v));
      iv.lo = std::move(lo);
      iv.lo_inclusive = lo_kind == "ge";
      if (lo_kind != "ge" && lo_kind != "gt") {
        return Status::ParseError("bad interval lo kind '" + lo_kind + "'");
      }
    }
    std::string hi_kind;
    in >> hi_kind;
    if (hi_kind != "none") {
      std::string v;
      in >> v;
      ERQ_ASSIGN_OR_RETURN(Value hi, DecodeValue(v));
      iv.hi = std::move(hi);
      iv.hi_inclusive = hi_kind == "le";
      if (hi_kind != "le" && hi_kind != "lt") {
        return Status::ParseError("bad interval hi kind '" + hi_kind + "'");
      }
    }
    if (in.fail()) return Status::ParseError("truncated interval term");
    return PrimitiveTerm::MakeInterval(std::move(col), std::move(iv));
  }
  if (kind == "ne") {
    std::string col_text, v;
    in >> col_text >> v;
    if (in.fail()) return Status::ParseError("truncated ne term");
    ERQ_ASSIGN_OR_RETURN(ColumnId col, DecodeColumn(col_text));
    ERQ_ASSIGN_OR_RETURN(Value value, DecodeValue(v));
    return PrimitiveTerm::MakeNotEqual(std::move(col), std::move(value));
  }
  if (kind == "cc") {
    std::string lhs, op, rhs;
    in >> lhs >> op >> rhs;
    if (in.fail()) return Status::ParseError("truncated cc term");
    ERQ_ASSIGN_OR_RETURN(ColumnId l, DecodeColumn(lhs));
    ERQ_ASSIGN_OR_RETURN(CompareOp o, DecodeOp(op));
    ERQ_ASSIGN_OR_RETURN(ColumnId r, DecodeColumn(rhs));
    return PrimitiveTerm::MakeColCol(std::move(l), o, std::move(r));
  }
  return Status::ParseError("unknown term kind '" + kind + "'");
}

}  // namespace

StatusOr<std::string> SerializePart(const AtomicQueryPart& part) {
  std::string out = "aqp v1 " + part.relations().Key() + " |";
  for (size_t i = 0; i < part.condition().terms().size(); ++i) {
    ERQ_ASSIGN_OR_RETURN(std::string term,
                         EncodeTerm(part.condition().terms()[i]));
    if (i > 0) out += " ;";
    out += " " + term;
  }
  return out;
}

StatusOr<AtomicQueryPart> ParsePart(const std::string& line) {
  if (!StartsWith(line, "aqp v1 ")) {
    return Status::ParseError("missing 'aqp v1' header");
  }
  size_t bar = line.find('|');
  if (bar == std::string::npos) return Status::ParseError("missing '|'");
  std::string rels_text(StripWhitespace(line.substr(7, bar - 7)));
  if (rels_text.empty()) return Status::ParseError("empty relation set");
  RelationSet relations(Split(rels_text, ','));

  std::vector<PrimitiveTerm> terms;
  std::string rest = line.substr(bar + 1);
  for (const std::string& raw : Split(rest, ';')) {
    std::string term_text(StripWhitespace(raw));
    if (term_text.empty()) continue;
    ERQ_ASSIGN_OR_RETURN(PrimitiveTerm term, DecodeTerm(term_text));
    terms.push_back(std::move(term));
  }
  return AtomicQueryPart(std::move(relations),
                         Conjunction::Make(std::move(terms)));
}

std::string SerializeCache(const CaqpCache& cache, size_t* skipped_opaque) {
  std::string out;
  size_t skipped = 0;
  for (const AtomicQueryPart& part : cache.Snapshot()) {
    auto line = SerializePart(part);
    if (!line.ok()) {
      ++skipped;
      continue;
    }
    out += *line;
    out += '\n';
  }
  // Surface the skip count even when the caller passes no out-param —
  // silently dropping parts from a dump was invisible before this counter.
  static Counter* skipped_counter =
      MetricsRegistry::Global().GetCounter("erq.serialize.skipped_opaque");
  if (skipped > 0) skipped_counter->Increment(skipped);
  if (skipped_opaque != nullptr) *skipped_opaque = skipped;
  return out;
}

StatusOr<size_t> DeserializeInto(const std::string& text, CaqpCache* cache) {
  size_t inserted = 0;
  for (const std::string& raw : Split(text, '\n')) {
    std::string line(StripWhitespace(raw));
    if (line.empty() || line[0] == '#') continue;
    ERQ_ASSIGN_OR_RETURN(AtomicQueryPart part, ParsePart(line));
    cache->Insert(part);
    ++inserted;
  }
  return inserted;
}

}  // namespace erq
