#include "core/atomic_query_part.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "common/hash.h"
#include "common/string_util.h"

namespace erq {

RelationSet::RelationSet(std::vector<std::string> names) {
  names_.reserve(names.size());
  for (std::string& n : names) names_.push_back(ToLower(n));
  std::sort(names_.begin(), names_.end());
  names_.erase(std::unique(names_.begin(), names_.end()), names_.end());
}

bool RelationSet::Contains(const std::string& name) const {
  return std::binary_search(names_.begin(), names_.end(), ToLower(name));
}

bool RelationSet::IsSubsetOf(const RelationSet& other) const {
  return std::includes(other.names_.begin(), other.names_.end(),
                       names_.begin(), names_.end());
}

std::string RelationSet::Key() const { return Join(names_, ","); }

size_t RelationSet::Hash() const {
  size_t seed = names_.size();
  for (const std::string& n : names_) HashCombine(&seed, n);
  return seed;
}

std::string RelationSet::ToString() const { return "{" + Key() + "}"; }

namespace {

/// Splits a canonical occurrence name into (base, present) — "a#2" -> "a".
std::string BaseOf(const std::string& occurrence) {
  size_t hash_pos = occurrence.find('#');
  return hash_pos == std::string::npos ? occurrence
                                       : occurrence.substr(0, hash_pos);
}

/// Enumerates injective assignments of this part's occurrences to the
/// query part's occurrences of the same base, invoking `fn(mapping)` for
/// each; stops early when fn returns true. Bounded to keep the check
/// cheap (occurrence counts are tiny in practice).
bool ForEachOccurrenceMapping(
    const RelationSet& stored, const RelationSet& query,
    const std::function<
        bool(const std::unordered_map<std::string, std::string>&)>& fn) {
  // Group query occurrences by base.
  std::unordered_map<std::string, std::vector<std::string>> query_by_base;
  for (const std::string& name : query.names()) {
    query_by_base[BaseOf(name)].push_back(name);
  }
  // Per stored occurrence, its candidate query occurrences.
  std::vector<std::pair<std::string, const std::vector<std::string>*>> slots;
  size_t combinations = 1;
  for (const std::string& name : stored.names()) {
    auto it = query_by_base.find(BaseOf(name));
    if (it == query_by_base.end()) return false;  // base not in query
    slots.emplace_back(name, &it->second);
    combinations *= it->second.size();
    if (combinations > 64) return false;  // bounded search; sound to give up
  }
  // Depth-first enumeration with injectivity per base.
  std::unordered_map<std::string, std::string> mapping;
  std::vector<const std::string*> used;
  std::function<bool(size_t)> rec = [&](size_t i) -> bool {
    if (i == slots.size()) return fn(mapping);
    for (const std::string& candidate : *slots[i].second) {
      bool taken = false;
      for (const std::string* u : used) {
        if (*u == candidate) {
          taken = true;
          break;
        }
      }
      if (taken) continue;
      mapping[slots[i].first] = candidate;
      used.push_back(&candidate);
      if (rec(i + 1)) return true;
      used.pop_back();
      mapping.erase(slots[i].first);
    }
    return false;
  };
  return rec(0);
}

}  // namespace

bool AtomicQueryPart::Covers(const AtomicQueryPart& other) const {
  if (relations_.IsSubsetOf(other.relations_)) {
    if (condition_.Covers(other.condition_)) return true;
  }
  // Occurrence remapping only helps when the query repeats a base table.
  bool query_has_repeats = false;
  for (const std::string& name : other.relations_.names()) {
    if (name.find('#') != std::string::npos) {
      query_has_repeats = true;
      break;
    }
  }
  if (!query_has_repeats) return false;
  return ForEachOccurrenceMapping(
      relations_, other.relations_,
      [&](const std::unordered_map<std::string, std::string>& mapping) {
        // Identity mappings were already covered by the literal check.
        bool identity = true;
        for (const auto& [from, to] : mapping) {
          if (from != to) {
            identity = false;
            break;
          }
        }
        if (identity) return false;
        return condition_.RenameRelations(mapping).Covers(other.condition_);
      });
}

size_t AtomicQueryPart::Hash() const {
  size_t seed = relations_.Hash();
  HashCombine(&seed, condition_.Hash());
  return seed;
}

std::string AtomicQueryPart::ToString() const {
  return relations_.ToString() + " | " + condition_.ToString();
}

}  // namespace erq
