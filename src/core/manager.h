#pragma once

/// \file
/// EmptyResultManager — the end-to-end §2.2 workflow in one object.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/lock_order.h"
#include "common/metrics.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "core/cost_gate.h"
#include "core/detector.h"
#include "core/explain.h"
#include "exec/executor.h"
#include "persist/persistence.h"
#include "plan/optimizer.h"
#include "plan/planner.h"
#include "reuse/reuse_store.h"
#include "sql/parser.h"
#include "stats/analyzer.h"

namespace erq {

/// Result of submitting one query through the managed workflow.
///
/// Structured API: stage timings live in `timings` (one field per pipeline
/// span, mirroring the `erq.manager.stage.*` histograms), the executed or
/// detected plan is exposed as the plan object itself (`plan`), and empty
/// results carry a structured `explanation` (Operation O1). ToString()
/// renders the whole outcome as text for callers that used to consume
/// `plan_text` + loose seconds fields.
struct QueryOutcome {
  /// Per-stage wall-clock seconds for this query. Field names match the
  /// span hierarchy in DESIGN.md §"Observability": total covers the whole
  /// Query()/QueryStatement() call; the stage fields are disjoint
  /// sub-intervals of it.
  struct Timings {
    double parse_seconds = 0.0;     ///< SQL text -> Statement (Query() only)
    double plan_seconds = 0.0;      ///< Statement -> logical plan
    double optimize_seconds = 0.0;  ///< logical -> physical (incl. re-opt
                                    ///< after §2.5 pruning)
    double gate_seconds = 0.0;      ///< C_cost threshold evaluation
    /// Decompose + C_aqp search + pruning. In a batched submission the
    /// probe runs once for the whole batch, so per-query attribution is
    /// an estimate: each checked query receives a share of the batch
    /// check time proportional to its parts_checked (probe work is
    /// linear in the number of decomposed parts — the combination
    /// factor F). Only when no query in the batch decomposed any parts
    /// is the time split evenly.
    double check_seconds = 0.0;
    double execute_seconds = 0.0;   ///< plan execution
    double record_seconds = 0.0;    ///< Operation O2 harvest + store
    double total_seconds = 0.0;     ///< whole call, wall clock

    /// Sum of the stage fields; <= total_seconds up to inter-stage glue.
    double AccountedSeconds() const {
      return parse_seconds + plan_seconds + optimize_seconds + gate_seconds +
             check_seconds + execute_seconds + record_seconds;
    }

    /// One-line rendering of the stage timings.
    std::string ToString() const;
  };

  bool detected_empty = false;  ///< skipped execution via C_aqp
  bool executed = false;        ///< the plan actually ran
  bool result_empty = false;    ///< final result set was empty
  size_t result_rows = 0;       ///< rows returned (0 when skipped)
  size_t aqps_recorded = 0;     ///< atomic query parts stored after execution
  size_t branches_pruned = 0;   ///< §2.5 partial detection: set-op branches
                                ///< proven empty and removed before execution
  size_t partitions_scanned = 0;  ///< partitions actually read by table scans
  size_t partitions_pruned = 0;   ///< partitions skipped via zone maps or
                                  ///< stored (relation, partition) knowledge
  size_t partition_aqps_recorded = 0;  ///< (relation, partition) parts stored
                                       ///< from zero-match scanned partitions
  size_t reused_subtrees = 0;    ///< plan subtrees replaced by spliced
                                 ///< reuse-store entries (CachedResultScan)
  size_t reuse_rows_served = 0;  ///< rows those spliced scans emitted
  size_t intermediates_harvested = 0;  ///< operator outputs admitted into
                                       ///< the reuse store after execution
  double estimated_cost = 0.0;  ///< optimizer cost estimate for the plan
  bool high_cost = false;       ///< estimated_cost > C_cost

  ExecutionResult result;  ///< rows (empty when detected_empty)

  /// The physical plan (post-pruning when §2.5 fired). After execution its
  /// nodes carry actual output cardinalities; after a detection hit they
  /// keep the optimizer estimates. Callers that rendered the old
  /// `plan_text` field call plan->ToString().
  PhysOpPtr plan;

  Timings timings;  ///< per-stage wall-clock breakdown of this call

  /// Operation O1, structured: present exactly when the result is empty.
  /// For executed-empty results this is ExplainEmptyResult's annotated
  /// plan + minimal causes; for detection hits the causes say the query
  /// was proven empty from C_aqp without execution.
  std::optional<EmptyResultExplanation> explanation;

  /// Backward-compatible text rendering (status line, timings, plan,
  /// explanation). Delegates to the one shared renderer,
  /// QueryResponse::ToText() (core/query_api.h), so there is a single
  /// text format across the shell, the examples, and the server.
  std::string ToString() const;
};

/// Forward declaration — the value-type request consumed by
/// Execute()/ExecuteBatch(); defined in core/query_api.h.
struct QueryRequest;

/// Aggregate counters across a query stream.
struct ManagerStats {
  uint64_t queries = 0;         ///< Query()/QueryStatement() calls
  uint64_t low_cost = 0;        ///< queries below the C_cost gate
  uint64_t checks = 0;          ///< queries that paid a C_aqp check
  uint64_t detected_empty = 0;  ///< detection hits (execution skipped)
  uint64_t executed = 0;        ///< plans actually executed
  uint64_t empty_results = 0;   ///< executed and came back empty
  uint64_t recorded = 0;        ///< executions harvested into C_aqp
  uint64_t branches_pruned = 0;  ///< §2.5 set-op branches removed
  uint64_t reused_subtrees = 0;  ///< plan subtrees served from the reuse store
  uint64_t intermediates_harvested = 0;  ///< operator outputs admitted into
                                         ///< the reuse store
  /// Execution seconds avoided by detection hits, estimated from the
  /// adaptive gate's exec_time(c) ~ alpha * c fit.
  double execute_seconds_saved_estimate = 0.0;
};

/// EmptyResultManager glues the whole pipeline together — the role the
/// paper's prototype plays inside PostgreSQL (§2.2):
///   parse -> plan -> optimize -> [cost(Q) > C_cost ? check C_aqp] ->
///   execute if not provably empty -> on empty result, harvest into C_aqp.
/// Registers itself as a catalog update listener so base-table updates
/// invalidate stored parts (read-mostly batch-update model).
///
/// Every stage records its latency into the process-wide MetricsRegistry
/// (`erq.manager.stage.*` histograms; see DESIGN.md §"Observability") and
/// into the returned QueryOutcome::Timings.
///
/// The config is validated in the ctor (EmptyResultConfig::Validate());
/// on a mis-configured manager every entry point returns that error.
///
/// Thread safety: the manager's own mutable state — the aggregate
/// counters and the adaptive cost gate — is guarded by `mu_`, and the
/// C_aqp collection inside the detector is internally synchronized, so
/// concurrent sessions may issue Query()/QueryStatement() calls on one
/// manager. Accessors ending in `_snapshot()` return value-type copies
/// taken under the lock — never live references. The planner, optimizer,
/// and catalog are thread-compatible (read-only here); concurrent catalog
/// *mutations* must be synchronized by the caller.
class EmptyResultManager {
 public:
  /// Builds the pipeline over `catalog` + `stats` (both borrowed; must
  /// outlive the manager). When `config.persist` is enabled the ctor also
  /// recovers the previous process's C_aqp — see init_status().
  EmptyResultManager(Catalog* catalog, StatsCatalog* stats,
                     EmptyResultConfig config = {},
                     OptimizerOptions optimizer_options = {});

  /// Construction-time health: EmptyResultConfig::Validate() combined
  /// with persistence recovery (when config.persist is enabled). On a
  /// non-OK status every entry point returns this error.
  const Status& init_status() const { return init_status_; }

  /// Primary entry point: full workflow for one single-statement
  /// QueryRequest (`sql` or `statement` form; batch requests belong to
  /// ExecuteBatch). The request's wire-presentation fields (row_limit,
  /// explain, tenant) do not affect the engine — they are consumed when
  /// the outcome is turned into a QueryResponse.
  ERQ_NODISCARD StatusOr<QueryOutcome> Execute(const QueryRequest& request);

  /// Primary entry point for a batch request, returned in input order
  /// (one StatusOr per query: a parse/plan error in one statement does
  /// not fail the rest — every item carries the same structured Status
  /// codes the single path produces). Each query is parsed and prepared
  /// individually; then every high-cost candidate is checked against
  /// C_aqp in a single batched lookup
  /// (EmptyResultDetector::CheckEmptyBatch — one epoch critical section,
  /// shard snapshots loaded once); then each query finishes exactly like
  /// the single path. Per-query `check_seconds` attributes the batch
  /// check time in proportion to each query's parts_checked (see
  /// QueryOutcome::Timings). An empty `request.batch` yields an empty
  /// vector.
  std::vector<StatusOr<QueryOutcome>> ExecuteBatch(
      const QueryRequest& request);

  /// Full workflow for a SQL string. Thin wrapper over Execute().
  ERQ_NODISCARD StatusOr<QueryOutcome> Query(const std::string& sql);

  /// Full workflow for a parsed statement. Thin wrapper over Execute().
  ERQ_NODISCARD StatusOr<QueryOutcome> QueryStatement(const Statement& stmt);

  /// Full workflow for a batch of SQL strings. Thin wrapper over
  /// ExecuteBatch().
  std::vector<StatusOr<QueryOutcome>> QueryBatch(
      const std::vector<std::string>& sqls);

  /// Plans and optimizes without the detection workflow (for tools/tests).
  ERQ_NODISCARD StatusOr<PhysOpPtr> Prepare(const std::string& sql);

  /// The detection engine (and, through it, the C_aqp collection).
  EmptyResultDetector& detector() { return detector_; }

  /// The intermediate-result reuse store, or nullptr when
  /// config.reuse.enabled is false (DESIGN.md §13). Internally
  /// synchronized; exposed for inspection tools and tests.
  ReuseStore* reuse_store() { return reuse_store_.get(); }
  /// Read-only view of the reuse store (nullptr when disabled).
  const ReuseStore* reuse_store() const { return reuse_store_.get(); }

  /// Value-type snapshot of the aggregate counters, taken under the lock.
  ManagerStats stats_snapshot() const {
    MutexLock lock(&mu_);
    return stats_;
  }

  /// Value-type snapshot of the past-statistics model behind the C_cost
  /// gate; consult .Suggest() or enable config.auto_tune_c_cost.
  CostGateSnapshot cost_gate_snapshot() const {
    MutexLock lock(&mu_);
    return cost_gate_.Snapshot();
  }

  /// The threshold currently in force (config.c_cost, or the adaptive
  /// suggestion when auto-tuning is enabled and warmed up).
  double EffectiveCostThreshold() const ERQ_EXCLUDES(mu_);
  /// Zeroes the aggregate counters (the cost-gate model keeps learning).
  void ResetStats() {
    MutexLock lock(&mu_);
    stats_ = ManagerStats{};
  }

  /// Invalidation hook (also wired to catalog update notifications).
  void OnTableUpdated(const std::string& table_name);

  /// The durability engine, or nullptr when config.persist is disabled.
  /// Exposed for flush-on-demand and inspection (persistence()->status()
  /// reports sticky IO errors; the manager keeps serving from memory).
  Persistence* persistence() { return persistence_.get(); }

 private:
  /// Manager instruments, resolved once at construction (see metrics.h).
  struct Instruments {
    Histogram* stage_parse;
    Histogram* stage_plan;
    Histogram* stage_optimize;
    Histogram* stage_gate;
    Histogram* stage_check;
    Histogram* stage_execute;
    Histogram* stage_record;
    Histogram* query_total;
    Counter* queries;
    Counter* low_cost;
    Counter* checks;
    Counter* detected_empty;
    Counter* executed;
    Counter* empty_results;
    Counter* recorded;
    Counter* branches_pruned;
  };
  static Instruments ResolveInstruments();

  /// One statement mid-pipeline: planned, optimized, and cost-gated, but
  /// not yet checked or executed. `total_timer` starts at construction so
  /// `outcome.timings.total_seconds` covers the whole per-query span even
  /// when the check happens in a batch.
  struct PreparedStatement {
    PlannedQuery planned;
    PhysOpPtr physical;
    QueryOutcome outcome;
    Timer total_timer;
  };

  /// Full workflow for one already-parsed statement (the single-query
  /// pipeline behind Execute's sql and statement forms).
  StatusOr<QueryOutcome> ExecuteStatement(const Statement& stmt);

  /// plan -> optimize -> cost gate (the pipeline prefix shared by
  /// ExecuteStatement and ExecuteBatch). Counts the query and fills
  /// `prep->outcome`'s cost/gate fields and stage timings.
  Status PrepareInto(const Statement& stmt, PreparedStatement* prep);

  /// The pipeline suffix: consume a detection verdict (nullopt when the
  /// query never reached the check — low-cost or detection disabled),
  /// then prune/re-optimize, execute, explain, and harvest.
  StatusOr<QueryOutcome> FinishChecked(PreparedStatement prep,
                                       std::optional<CheckResult> check);

  /// Offers each executed-run intermediate to the reuse store: decompose
  /// the Filter-over-TableScan subtree into the atomic-part normal form,
  /// admit single-part single-relation shapes, and mirror zero-row
  /// admissions into C_aqp (a zero-row intermediate IS an emptiness
  /// fact). Returns the number admitted.
  size_t HarvestIntermediates(
      const std::vector<HarvestedIntermediate>& harvested);

  Catalog* catalog_;
  StatsCatalog* stats_catalog_;
  const EmptyResultConfig config_;
  Status init_status_;
  Planner planner_;
  /// Declared before optimizer_: the optimizer's options capture the
  /// store as its ReuseSpliceSource at construction. Null when
  /// config.reuse.enabled is false.
  std::unique_ptr<ReuseStore> reuse_store_;
  Optimizer optimizer_;
  EmptyResultDetector detector_;
  const Instruments metrics_;
  /// Declared after detector_ so it is destroyed first: the destructor
  /// detaches from the still-alive cache and flushes the journal.
  std::unique_ptr<Persistence> persistence_;

  // Top of the lock hierarchy: held only around counter/gate updates,
  // never across calls into the detector, caches, or persistence.
  mutable Mutex mu_ ERQ_ACQUIRED_AFTER(lock_order::kManager)
      ERQ_ACQUIRED_BEFORE(lock_order::kCaqpCache){lock_order::kManager};
  AdaptiveCostGate cost_gate_ ERQ_GUARDED_BY(mu_);
  ManagerStats stats_ ERQ_GUARDED_BY(mu_);
};

}  // namespace erq
