#pragma once

#include <memory>
#include <string>

#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "core/cost_gate.h"
#include "core/detector.h"
#include "exec/executor.h"
#include "plan/optimizer.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "stats/analyzer.h"

namespace erq {

/// Result of submitting one query through the managed workflow.
struct QueryOutcome {
  bool detected_empty = false;  // skipped execution via C_aqp
  bool executed = false;
  bool result_empty = false;    // final result set was empty
  size_t result_rows = 0;
  size_t aqps_recorded = 0;     // atomic query parts stored after execution
  size_t branches_pruned = 0;   // §2.5 partial detection: set-op branches
                                // proven empty and removed before execution
  double estimated_cost = 0.0;
  bool high_cost = false;       // estimated_cost > C_cost

  ExecutionResult result;  // rows (empty when detected_empty)
  std::string plan_text;   // Operation O1: plan with output cardinalities

  // Overhead accounting (seconds).
  double check_seconds = 0.0;    // decompose + C_aqp search
  double execute_seconds = 0.0;  // plan execution
  double record_seconds = 0.0;   // Operation O2 harvest + store
};

/// Aggregate counters across a query stream.
struct ManagerStats {
  uint64_t queries = 0;
  uint64_t low_cost = 0;
  uint64_t checks = 0;
  uint64_t detected_empty = 0;
  uint64_t executed = 0;
  uint64_t empty_results = 0;   // executed and came back empty
  uint64_t recorded = 0;        // executions harvested into C_aqp
  uint64_t branches_pruned = 0;
  double execute_seconds_saved_estimate = 0.0;
};

/// EmptyResultManager glues the whole pipeline together — the role the
/// paper's prototype plays inside PostgreSQL (§2.2):
///   parse -> plan -> optimize -> [cost(Q) > C_cost ? check C_aqp] ->
///   execute if not provably empty -> on empty result, harvest into C_aqp.
/// Registers itself as a catalog update listener so base-table updates
/// invalidate stored parts (read-mostly batch-update model).
///
/// Thread safety: the manager's own mutable state — the aggregate
/// counters and the adaptive cost gate — is guarded by `mu_`, and the
/// C_aqp collection inside the detector is internally synchronized, so
/// concurrent sessions may issue Query()/QueryStatement() calls on one
/// manager. The planner, optimizer, and catalog are thread-compatible
/// (read-only here); concurrent catalog *mutations* must be synchronized
/// by the caller.
class EmptyResultManager {
 public:
  EmptyResultManager(Catalog* catalog, StatsCatalog* stats,
                     EmptyResultConfig config = {},
                     OptimizerOptions optimizer_options = {});

  /// Full workflow for a SQL string.
  StatusOr<QueryOutcome> Query(const std::string& sql);

  /// Full workflow for a parsed statement.
  StatusOr<QueryOutcome> QueryStatement(const Statement& stmt);

  /// Plans and optimizes without the detection workflow (for tools/tests).
  StatusOr<PhysOpPtr> Prepare(const std::string& sql);

  EmptyResultDetector& detector() { return detector_; }

  /// Consistent snapshot of the aggregate counters.
  ManagerStats stats() const {
    MutexLock lock(&mu_);
    return stats_;
  }

  /// Snapshot of the past-statistics model behind the C_cost gate;
  /// consult cost_gate().Suggest() or enable config.auto_tune_c_cost.
  AdaptiveCostGate cost_gate() const {
    MutexLock lock(&mu_);
    return cost_gate_;
  }

  /// The threshold currently in force (config.c_cost, or the adaptive
  /// suggestion when auto-tuning is enabled and warmed up).
  double EffectiveCostThreshold() const ERQ_EXCLUDES(mu_);
  void ResetStats() {
    MutexLock lock(&mu_);
    stats_ = ManagerStats{};
  }

  /// Invalidation hook (also wired to catalog update notifications).
  void OnTableUpdated(const std::string& table_name);

 private:
  Catalog* catalog_;
  StatsCatalog* stats_catalog_;
  const EmptyResultConfig config_;
  Planner planner_;
  Optimizer optimizer_;
  EmptyResultDetector detector_;

  mutable Mutex mu_;
  AdaptiveCostGate cost_gate_ ERQ_GUARDED_BY(mu_);
  ManagerStats stats_ ERQ_GUARDED_BY(mu_);
};

}  // namespace erq
