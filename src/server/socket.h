#pragma once

/// \file
/// Thin RAII layer over POSIX TCP sockets — everything erq_server needs
/// and nothing more: a move-only connected socket (Socket) and a bound
/// listener (Listener). No external networking dependency; plain
/// `socket(2)`/`bind(2)`/`accept(2)`.
///
/// Shutdown discipline: both classes separate *waking a blocked peer
/// thread* (Shutdown — `shutdown(2)`, fd stays open so no descriptor can
/// be reused underneath a racing reader) from *releasing the descriptor*
/// (Close / destructor). ErqServer::Stop relies on this: it shuts every
/// live fd down first and only the owning thread closes it.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/statusor.h"

namespace erq {

/// A connected TCP stream, move-only owner of one file descriptor.
class Socket {
 public:
  /// An invalid (empty) socket.
  Socket() = default;
  /// Adopts `fd` (-1 for invalid).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// The raw descriptor (-1 when invalid).
  int fd() const { return fd_; }
  /// True when the socket owns a live descriptor.
  bool valid() const { return fd_ >= 0; }

  /// Half-close both directions, waking any thread blocked in Recv/Send
  /// on this socket. The fd stays open until Close()/destruction.
  void Shutdown();
  /// Releases the descriptor (idempotent).
  void Close();

  /// Writes all of `data`, looping over partial sends. SIGPIPE is
  /// suppressed; a broken peer yields an IoError.
  ERQ_NODISCARD Status SendAll(const char* data, size_t len);
  /// Convenience overload.
  ERQ_NODISCARD Status SendAll(const std::string& data) {
    return SendAll(data.data(), data.size());
  }

  /// Reads up to `len` bytes; 0 means orderly EOF. Interrupted reads
  /// (EINTR) are retried internally.
  ERQ_NODISCARD StatusOr<size_t> RecvSome(char* buf, size_t len);

  /// Client side: open a TCP connection to `host:port` (tests, bench,
  /// and any in-process client of erq_server).
  static StatusOr<Socket> Connect(const std::string& host, uint16_t port);

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to host:port.
class Listener {
 public:
  /// An invalid (unbound) listener.
  Listener() = default;
  ~Listener() = default;
  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&&) noexcept = default;

  /// Binds and listens on `host:port` (port 0 = kernel-chosen). The
  /// socket is opened with SO_REUSEADDR so restarts do not wait out
  /// TIME_WAIT.
  static StatusOr<Listener> Bind(const std::string& host, uint16_t port,
                                 int backlog = 64);

  /// The actually-bound port (resolves port 0 requests).
  uint16_t port() const { return port_; }
  /// True when the listener owns a live descriptor.
  bool valid() const { return socket_.valid(); }

  /// Blocks for the next connection. After Shutdown() returns an
  /// IoError ("listener shut down") instead of a socket.
  ERQ_NODISCARD StatusOr<Socket> Accept();

  /// Wakes a thread blocked in Accept() (shutdown(2) on the listening
  /// fd); the fd itself stays owned until destruction.
  void Shutdown() { socket_.Shutdown(); }

 private:
  Socket socket_;
  uint16_t port_ = 0;
};

}  // namespace erq
