#include "server/tenant_registry.h"

namespace erq {

bool TenantRegistry::IsValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > 32) return false;
  for (char c : name) {
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

StatusOr<TenantRegistry::Tenant*> TenantRegistry::GetOrCreate(
    const std::string& name) {
  const std::string& resolved = name.empty() ? kDefaultTenant : name;
  if (!IsValidTenantName(resolved)) {
    return Status::InvalidArgument(
        "tenant name must be 1-32 chars of [a-z0-9_]: \"" + resolved + "\"");
  }

  MutexLock lock(&mu_);
  if (auto it = tenants_.find(resolved); it != tenants_.end()) {
    return it->second.get();
  }
  if (tenants_.size() >= options_.max_tenants) {
    return Status::ResourceExhausted(
        "tenant limit reached (" + std::to_string(options_.max_tenants) +
        "); cannot create tenant \"" + resolved + "\"");
  }

  auto tenant = std::make_unique<Tenant>();
  tenant->name = resolved;
  EmptyResultConfig config = options_.tenant_config;
  config.n_max = quota_;
  if (config.reuse.enabled) config.reuse.budget_bytes = reuse_quota_;
  tenant->manager =
      std::make_unique<EmptyResultManager>(catalog_, stats_, config);
  ERQ_RETURN_IF_ERROR(tenant->manager->init_status());
  const std::string prefix = "erq.server.tenant." + resolved;
  tenant->requests =
      MetricsRegistry::Global().GetCounter(prefix + ".requests");
  tenant->errors = MetricsRegistry::Global().GetCounter(prefix + ".errors");

  Tenant* out = tenant.get();
  tenants_[resolved] = std::move(tenant);
  return out;
}

std::vector<std::string> TenantRegistry::TenantNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) out.push_back(name);
  return out;
}

std::vector<TenantRegistry::Tenant*> TenantRegistry::Tenants() const {
  MutexLock lock(&mu_);
  std::vector<Tenant*> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) out.push_back(tenant.get());
  return out;
}

size_t TenantRegistry::tenant_count() const {
  MutexLock lock(&mu_);
  return tenants_.size();
}

size_t TenantRegistry::InvalidateTable(const std::string& table) {
  MutexLock lock(&mu_);
  for (const auto& [name, tenant] : tenants_) {
    tenant->manager->OnTableUpdated(table);
  }
  return tenants_.size();
}

}  // namespace erq
