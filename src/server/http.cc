#include "server/http.h"

#include <cctype>
#include <cstdlib>

namespace erq {

namespace {

constexpr size_t kReadChunk = 4096;

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Parses the decimal Content-Length value; rejects junk.
StatusOr<size_t> ParseContentLength(const std::string& value) {
  if (value.empty()) return Status::ParseError("empty Content-Length");
  size_t out = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return Status::ParseError("non-numeric Content-Length: " + value);
    }
    if (out > (SIZE_MAX - 9) / 10) {
      return Status::ParseError("Content-Length overflow");
    }
    out = out * 10 + static_cast<size_t>(c - '0');
  }
  return out;
}

}  // namespace

std::string UrlDecode(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out += ' ';
    } else if (in[i] == '%' && i + 2 < in.size() &&
               std::isxdigit(static_cast<unsigned char>(in[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(in[i + 2]))) {
      const char hex[3] = {in[i + 1], in[i + 2], '\0'};
      out += static_cast<char>(std::strtol(hex, nullptr, 16));
      i += 2;
    } else {
      out += in[i];
    }
  }
  return out;
}

const char* HttpReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

int HttpStatusFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kParseError:
    case StatusCode::kBindError:
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotSupported:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
      return 409;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kIoError:
    case StatusCode::kInternal:
    default:
      return 500;
  }
}

std::string HttpRequest::Serialize(const std::string& host) const {
  std::string target = path.empty() ? "/" : path;
  bool first = true;
  for (const auto& [key, value] : query) {
    target += first ? '?' : '&';
    first = false;
    target += key;  // callers pass already-safe keys
    target += '=';
    for (char c : value) {
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.') {
        target += c;
      } else {
        char buf[4];
        std::snprintf(buf, sizeof(buf), "%%%02X",
                      static_cast<unsigned char>(c));
        target += buf;
      }
    }
  }
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: " + host + "\r\n";
  for (const auto& [key, value] : headers) {
    out += key + ": " + value + "\r\n";
  }
  if (!body.empty() || method == "POST") {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  if (!keep_alive) out += "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

std::string HttpResponse::Serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status_code) + " " +
                    HttpReasonPhrase(status_code) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  out += "\r\n";
  out += body;
  return out;
}

Status HttpConnection::FillBuffer(size_t want) {
  while (buffer_.size() < want) {
    char chunk[kReadChunk];
    ERQ_ASSIGN_OR_RETURN(const size_t n,
                         socket_.RecvSome(chunk, sizeof(chunk)));
    if (n == 0) return Status::IoError("connection closed");
    buffer_.append(chunk, n);
    if (buffer_.size() > max_request_bytes_) {
      return Status::InvalidArgument("request exceeds max_request_bytes");
    }
  }
  return Status::OK();
}

StatusOr<HttpRequest> HttpConnection::ReadRequest() {
  // Pull bytes until the header terminator is in the buffer.
  size_t header_end;
  while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    ERQ_RETURN_IF_ERROR(FillBuffer(buffer_.size() + 1));
  }
  const std::string head = buffer_.substr(0, header_end);

  HttpRequest request;
  size_t line_start = 0;
  size_t line_end = head.find("\r\n");
  const std::string start_line =
      head.substr(0, line_end == std::string::npos ? head.size() : line_end);

  // "METHOD SP target SP HTTP/1.1"
  const size_t sp1 = start_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : start_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return Status::ParseError("malformed HTTP request line: " + start_line);
  }
  request.method = start_line.substr(0, sp1);
  std::string target = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = start_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    return Status::ParseError("unsupported HTTP version: " + version);
  }

  // Split target into path + query, decoding both.
  const size_t qmark = target.find('?');
  request.path = UrlDecode(target.substr(0, qmark));
  if (qmark != std::string::npos) {
    std::string qs = target.substr(qmark + 1);
    size_t pos = 0;
    while (pos <= qs.size()) {
      size_t amp = qs.find('&', pos);
      if (amp == std::string::npos) amp = qs.size();
      const std::string pair = qs.substr(pos, amp - pos);
      if (!pair.empty()) {
        const size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          request.query[UrlDecode(pair)] = "";
        } else {
          request.query[UrlDecode(pair.substr(0, eq))] =
              UrlDecode(pair.substr(eq + 1));
        }
      }
      pos = amp + 1;
    }
  }

  // Header fields.
  while (line_end != std::string::npos) {
    line_start = line_end + 2;
    line_end = head.find("\r\n", line_start);
    const std::string line = head.substr(
        line_start,
        (line_end == std::string::npos ? head.size() : line_end) - line_start);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("malformed HTTP header: " + line);
    }
    std::string key = ToLower(line.substr(0, colon));
    size_t value_start = colon + 1;
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    request.headers[std::move(key)] = line.substr(value_start);
  }

  // Body (Content-Length framing only).
  size_t body_len = 0;
  if (auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    ERQ_ASSIGN_OR_RETURN(body_len, ParseContentLength(it->second));
  }
  const size_t total = header_end + 4 + body_len;
  if (total > max_request_bytes_) {
    return Status::InvalidArgument("request exceeds max_request_bytes");
  }
  ERQ_RETURN_IF_ERROR(FillBuffer(total));
  request.body = buffer_.substr(header_end + 4, body_len);
  buffer_.erase(0, total);

  if (auto it = request.headers.find("connection");
      it != request.headers.end()) {
    request.keep_alive = ToLower(it->second) != "close";
  }
  return request;
}

Status HttpConnection::WriteResponse(const HttpResponse& response) {
  return socket_.SendAll(response.Serialize());
}

Status ReadHttpResponse(Socket* socket, int* status_code, std::string* body) {
  std::string buffer;
  size_t header_end;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    char chunk[kReadChunk];
    ERQ_ASSIGN_OR_RETURN(const size_t n,
                         socket->RecvSome(chunk, sizeof(chunk)));
    if (n == 0) return Status::IoError("connection closed mid-response");
    buffer.append(chunk, n);
  }
  const std::string head = buffer.substr(0, header_end);
  // "HTTP/1.1 NNN Reason"
  const size_t sp = head.find(' ');
  if (sp == std::string::npos || sp + 4 > head.size()) {
    return Status::ParseError("malformed HTTP status line");
  }
  *status_code = std::atoi(head.c_str() + sp + 1);

  size_t body_len = 0;
  const std::string lower = ToLower(head);
  const size_t cl = lower.find("content-length:");
  if (cl != std::string::npos) {
    body_len = static_cast<size_t>(
        std::atoll(head.c_str() + cl + sizeof("content-length:") - 1));
  }
  const size_t total = header_end + 4 + body_len;
  while (buffer.size() < total) {
    char chunk[kReadChunk];
    ERQ_ASSIGN_OR_RETURN(const size_t n,
                         socket->RecvSome(chunk, sizeof(chunk)));
    if (n == 0) return Status::IoError("connection closed mid-body");
    buffer.append(chunk, n);
  }
  *body = buffer.substr(header_end + 4, body_len);
  return Status::OK();
}

}  // namespace erq
