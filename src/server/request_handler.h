#pragma once

/// \file
/// The service logic of erq_server, separated from the transport: a
/// RequestHandler maps one parsed HttpRequest to one HttpResponse over a
/// TenantRegistry. ErqServer owns the sockets and threads; the handler
/// is stateless per request and directly unit-testable without a
/// listening socket.
///
/// Routes:
///   POST /v1/query                  run one query or one batch
///   GET  /metrics                   erq.metrics.v1 registry snapshot
///   GET  /v1/admin/cache            per-tenant C_aqp + reuse-store
///                                   occupancy and hit statistics
///   POST /v1/admin/invalidate?table=T  drop detection state for a table

#include <string>

#include "common/metrics.h"
#include "server/http.h"
#include "server/tenant_registry.h"

namespace erq {

/// The static `erq.server.*` instruments (per-tenant instruments live in
/// TenantRegistry::Tenant). Resolved once and shared; metrics_doc_test
/// calls Resolve() so the documented and registered sets stay in sync.
struct ServerInstruments {
  Counter* requests;              ///< erq.server.requests
  Counter* errors;                ///< erq.server.errors
  Counter* queries;               ///< erq.server.queries
  Counter* batch_queries;         ///< erq.server.batch_queries
  Counter* invalidations;         ///< erq.server.invalidations
  Counter* connections_total;     ///< erq.server.connections_total
  Counter* connections_rejected;  ///< erq.server.connections_rejected
  Gauge* connections;             ///< erq.server.connections
  Gauge* tenants;                 ///< erq.server.tenants
  Histogram* request_seconds;     ///< erq.server.request_seconds

  /// Registers (first call) and resolves every static server instrument.
  static ServerInstruments Resolve();
};

/// Maps requests to responses. Thread-safe: the handler itself holds no
/// mutable state; all shared state lives behind the registry's and the
/// managers' own locks.
class RequestHandler {
 public:
  /// `tenants` is borrowed and must outlive the handler.
  explicit RequestHandler(TenantRegistry* tenants)
      : tenants_(tenants), metrics_(ServerInstruments::Resolve()) {}

  /// Dispatches one request. Never throws; every failure path produces
  /// a well-formed JSON error response with the HTTP status derived
  /// from the underlying Status (HttpStatusFromStatus).
  HttpResponse Handle(const HttpRequest& request);

 private:
  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleMetrics();
  HttpResponse HandleAdminCache();
  HttpResponse HandleInvalidate(const HttpRequest& request);

  /// A JSON error response (`erq.response.v1` with only the status
  /// object populated), HTTP status from the Status code.
  static HttpResponse ErrorResponse(const Status& status);

  TenantRegistry* tenants_;
  const ServerInstruments metrics_;
};

}  // namespace erq
