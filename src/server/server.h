#pragma once

/// \file
/// ErqServer — the multi-tenant network front end. One accept thread
/// plus one thread per connection (keep-alive HTTP/1.1), bounded by
/// ServerOptions::max_connections; every request runs through a
/// RequestHandler over the server's TenantRegistry.
///
/// Concurrency model (no condition variables, per the lock-annotation
/// rules): threads block in `accept(2)`/`recv(2)` and Stop() wakes them
/// with `shutdown(2)` on the fds — the listener first (stops new
/// connections), then every live connection (drains serving threads),
/// then joins. The server mutex (lock_order::kServer, the lowest rank)
/// guards only the connection registry and is never held across a
/// blocking call.

#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/config.h"
#include "server/http.h"
#include "server/request_handler.h"
#include "server/socket.h"
#include "server/tenant_registry.h"

namespace erq {

/// The HTTP front end over one shared Catalog/StatsCatalog pair.
/// Start() binds and serves; Stop() (or destruction) shuts down
/// gracefully. A stopped server cannot be restarted — build a new one.
class ErqServer {
 public:
  /// Borrows `catalog` and `stats` (must outlive the server; shared by
  /// every tenant).
  ErqServer(Catalog* catalog, StatsCatalog* stats, ServerOptions options);
  ~ErqServer();
  ErqServer(const ErqServer&) = delete;
  ErqServer& operator=(const ErqServer&) = delete;

  /// Validates the options, binds the listener, and starts the accept
  /// thread. On error nothing is left running.
  ERQ_NODISCARD Status Start();

  /// The bound port (valid after Start(); resolves port 0 requests).
  uint16_t port() const { return listener_.port(); }

  /// Graceful shutdown: stop accepting, wake and join every connection
  /// thread. Idempotent; also run by the destructor.
  void Stop();

  /// The tenant pool (exposed for tests and tools).
  TenantRegistry& tenants() { return tenants_; }

 private:
  struct Connection;

  /// Body of the accept thread.
  void AcceptLoop();
  /// Body of one connection thread: serve keep-alive requests until the
  /// peer closes, an error occurs, or Stop() shuts the socket down.
  /// Erases `id` from `connections_` on exit (the done signal the
  /// reapers look for); never touches `threads_`.
  void ServeConnection(uint64_t id, Connection* conn);

  /// Joins every thread whose connection has finished (its id left
  /// `connections_` but remains in `threads_`). Called opportunistically
  /// by the accept loop and in the Stop() drain.
  void ReapFinished();

  Catalog* catalog_;
  StatsCatalog* stats_;
  const ServerOptions options_;
  TenantRegistry tenants_;
  RequestHandler handler_;
  const ServerInstruments metrics_;

  Listener listener_;
  std::thread accept_thread_;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  /// One live connection. The serving thread's handle is NOT here — it
  /// lives in `threads_`, touched only by the accept thread and Stop(),
  /// so a fast-exiting connection cannot race its own thread handle.
  struct Connection {
    HttpConnection http;
    explicit Connection(Socket socket, size_t max_request_bytes)
        : http(std::move(socket), max_request_bytes) {}
  };

  /// The bottom of the lock hierarchy; held only to admit/look up/
  /// retire connections, never across recv/send or engine calls.
  mutable Mutex mu_ ERQ_ACQUIRED_AFTER(lock_order::kServer){
      lock_order::kServer};
  /// Live connections; an entry disappearing is the "thread finishing"
  /// signal its `threads_` twin is reaped by.
  std::map<uint64_t, std::unique_ptr<Connection>> connections_
      ERQ_GUARDED_BY(mu_);
  /// Serving-thread handles, keyed like `connections_`. Owned by the
  /// accept thread + Stop() exclusively (serving threads never touch
  /// their own handle).
  std::map<uint64_t, std::thread> threads_ ERQ_GUARDED_BY(mu_);
  uint64_t next_connection_id_ ERQ_GUARDED_BY(mu_) = 0;
};

}  // namespace erq
