#include "server/request_handler.h"

#include "common/json.h"
#include "core/query_api.h"
#include "reuse/reuse_store.h"

namespace erq {

namespace {

/// Parses the optional "explain" body field.
StatusOr<ExplainVerbosity> ParseExplain(const std::string& text) {
  if (text == "none") return ExplainVerbosity::kNone;
  if (text == "summary") return ExplainVerbosity::kSummary;
  if (text == "full") return ExplainVerbosity::kFull;
  return Status::InvalidArgument(
      "explain must be one of \"none\", \"summary\", \"full\"; got \"" +
      text + "\"");
}

/// Decodes a POST /v1/query body into a QueryRequest.
StatusOr<QueryRequest> ParseQueryBody(const std::string& body) {
  ERQ_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(body));
  if (!doc.is_object()) {
    return Status::InvalidArgument("query body must be a JSON object");
  }
  QueryRequest request;
  if (const JsonValue* sql = doc.Find("sql"); sql != nullptr) {
    if (!sql->is_string()) {
      return Status::InvalidArgument("\"sql\" must be a string");
    }
    request.sql = sql->AsString();
  }
  if (const JsonValue* batch = doc.Find("batch"); batch != nullptr) {
    if (!batch->is_array()) {
      return Status::InvalidArgument("\"batch\" must be an array of strings");
    }
    for (const JsonValue& item : batch->Items()) {
      if (!item.is_string()) {
        return Status::InvalidArgument(
            "\"batch\" must be an array of strings");
      }
      request.batch.push_back(item.AsString());
    }
  }
  if (const JsonValue* tenant = doc.Find("tenant"); tenant != nullptr) {
    if (!tenant->is_string()) {
      return Status::InvalidArgument("\"tenant\" must be a string");
    }
    request.tenant = tenant->AsString();
  }
  if (const JsonValue* limit = doc.Find("row_limit"); limit != nullptr) {
    if (!limit->is_number() || limit->AsDouble() < 0) {
      return Status::InvalidArgument(
          "\"row_limit\" must be a non-negative number");
    }
    request.row_limit = static_cast<size_t>(limit->AsInt64());
  }
  if (const JsonValue* explain = doc.Find("explain"); explain != nullptr) {
    if (!explain->is_string()) {
      return Status::InvalidArgument("\"explain\" must be a string");
    }
    ERQ_ASSIGN_OR_RETURN(request.explain, ParseExplain(explain->AsString()));
  }
  if (request.sql.empty() && request.batch.empty()) {
    return Status::InvalidArgument(
        "query body must carry \"sql\" or \"batch\"");
  }
  if (!request.sql.empty() && !request.batch.empty()) {
    return Status::InvalidArgument(
        "query body must carry \"sql\" or \"batch\", not both");
  }
  return request;
}

}  // namespace

ServerInstruments ServerInstruments::Resolve() {
  MetricsRegistry& r = MetricsRegistry::Global();
  ServerInstruments out;
  out.requests = r.GetCounter("erq.server.requests");
  out.errors = r.GetCounter("erq.server.errors");
  out.queries = r.GetCounter("erq.server.queries");
  out.batch_queries = r.GetCounter("erq.server.batch_queries");
  out.invalidations = r.GetCounter("erq.server.invalidations");
  out.connections_total = r.GetCounter("erq.server.connections_total");
  out.connections_rejected = r.GetCounter("erq.server.connections_rejected");
  out.connections = r.GetGauge("erq.server.connections");
  out.tenants = r.GetGauge("erq.server.tenants");
  out.request_seconds = r.GetHistogram("erq.server.request_seconds");
  return out;
}

HttpResponse RequestHandler::ErrorResponse(const Status& status) {
  HttpResponse response;
  response.status_code = HttpStatusFromStatus(status);
  response.body = QueryResponse::FromStatus(status).ToJson();
  return response;
}

HttpResponse RequestHandler::Handle(const HttpRequest& request) {
  metrics_.requests->Increment();
  ScopedSpan span(metrics_.request_seconds);

  HttpResponse response;
  if (request.path == "/v1/query") {
    if (request.method != "POST") {
      response = ErrorResponse(
          Status::InvalidArgument("/v1/query requires POST"));
      response.status_code = 405;
    } else {
      response = HandleQuery(request);
    }
  } else if (request.path == "/metrics") {
    if (request.method != "GET") {
      response =
          ErrorResponse(Status::InvalidArgument("/metrics requires GET"));
      response.status_code = 405;
    } else {
      response = HandleMetrics();
    }
  } else if (request.path == "/v1/admin/cache") {
    if (request.method != "GET") {
      response = ErrorResponse(
          Status::InvalidArgument("/v1/admin/cache requires GET"));
      response.status_code = 405;
    } else {
      response = HandleAdminCache();
    }
  } else if (request.path == "/v1/admin/invalidate") {
    if (request.method != "POST") {
      response = ErrorResponse(
          Status::InvalidArgument("/v1/admin/invalidate requires POST"));
      response.status_code = 405;
    } else {
      response = HandleInvalidate(request);
    }
  } else {
    response =
        ErrorResponse(Status::NotFound("no route for " + request.path));
  }

  if (response.status_code >= 400) metrics_.errors->Increment();
  return response;
}

HttpResponse RequestHandler::HandleQuery(const HttpRequest& http) {
  StatusOr<QueryRequest> parsed = ParseQueryBody(http.body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const QueryRequest& request = *parsed;

  StatusOr<TenantRegistry::Tenant*> tenant =
      tenants_->GetOrCreate(request.tenant);
  if (!tenant.ok()) return ErrorResponse(tenant.status());
  metrics_.tenants->Set(static_cast<int64_t>(tenants_->tenant_count()));
  (*tenant)->requests->Increment();

  HttpResponse response;
  if (!request.batch.empty()) {
    // Batch: one erq.response.v1 item per query, each wrapped with the
    // HTTP status its Status code maps to, so transport-level and
    // engine-level failures read uniformly item by item.
    metrics_.batch_queries->Increment(request.batch.size());
    std::vector<StatusOr<QueryOutcome>> results =
        (*tenant)->manager->ExecuteBatch(request);
    std::string body = "{\"schema\":\"erq.response.batch.v1\",\"items\":[";
    for (size_t i = 0; i < results.size(); ++i) {
      QueryResponse item = QueryResponse::FromResult(results[i], request);
      if (!item.status.ok()) (*tenant)->errors->Increment();
      if (i > 0) body += ',';
      body += "{\"http_status\":" +
              std::to_string(HttpStatusFromStatus(item.status)) +
              ",\"response\":" + item.ToJson() + "}";
    }
    body += "]}";
    response.body = std::move(body);
    response.status_code = 200;
    return response;
  }

  metrics_.queries->Increment();
  QueryResponse result = QueryResponse::FromResult(
      (*tenant)->manager->Execute(request), request);
  if (!result.status.ok()) (*tenant)->errors->Increment();
  response.status_code = HttpStatusFromStatus(result.status);
  response.body = result.ToJson();
  return response;
}

HttpResponse RequestHandler::HandleMetrics() {
  HttpResponse response;
  response.body = MetricsRegistry::Global().ToJson();
  return response;
}

HttpResponse RequestHandler::HandleAdminCache() {
  std::string body = "{\"schema\":\"erq.admin.cache.v1\",\"quota\":" +
                     std::to_string(tenants_->quota()) +
                     ",\"reuse_quota_bytes\":" +
                     std::to_string(tenants_->reuse_quota()) +
                     ",\"tenants\":{";
  bool first = true;
  for (TenantRegistry::Tenant* tenant : tenants_->Tenants()) {
    const CaqpCache& cache = tenant->manager->detector().cache();
    const CaqpCache::CacheStats stats = cache.stats_snapshot();
    if (!first) body += ',';
    first = false;
    body += JsonQuote(tenant->name);
    body += ":{\"size\":" + std::to_string(cache.size());
    body += ",\"n_max\":" + std::to_string(cache.n_max());
    body += ",\"lookups\":" + std::to_string(stats.lookups);
    body += ",\"hits\":" + std::to_string(stats.hits);
    body += ",\"inserted\":" + std::to_string(stats.inserted);
    body += ",\"evictions\":" + std::to_string(stats.evictions);
    body += ",\"invalidation_drops\":" +
            std::to_string(stats.invalidation_drops);
    // Reuse-store occupancy and hit counters ride along so one admin
    // call answers "who is spending the cache budget on what". null
    // when the tenant template has reuse disabled (no store exists).
    if (const ReuseStore* reuse = tenant->manager->reuse_store()) {
      const ReuseStoreStats rs = reuse->stats_snapshot();
      body += ",\"reuse\":{\"entries\":" + std::to_string(rs.entries);
      body += ",\"bytes\":" + std::to_string(rs.bytes);
      body += ",\"lookups\":" + std::to_string(rs.lookups);
      body += ",\"hits\":" + std::to_string(rs.hits);
      body += ",\"rows_served\":" + std::to_string(rs.rows_served);
      body += ",\"admitted\":" + std::to_string(rs.admitted);
      body += ",\"evictions\":" + std::to_string(rs.evictions);
      body += ",\"invalidated\":" + std::to_string(rs.invalidated);
      body += "}";
    } else {
      body += ",\"reuse\":null";
    }
    body += "}";
  }
  body += "}}";
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse RequestHandler::HandleInvalidate(const HttpRequest& request) {
  const auto it = request.query.find("table");
  if (it == request.query.end() || it->second.empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "/v1/admin/invalidate requires a ?table= parameter"));
  }
  metrics_.invalidations->Increment();
  const size_t notified = tenants_->InvalidateTable(it->second);
  HttpResponse response;
  response.body = "{\"schema\":\"erq.admin.invalidate.v1\",\"table\":" +
                  JsonQuote(it->second) +
                  ",\"tenants_notified\":" + std::to_string(notified) + "}";
  return response;
}

}  // namespace erq
