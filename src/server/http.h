#pragma once

/// \file
/// Minimal HTTP/1.1 message layer for erq_server: parse one request off
/// a socket, serialize one response back. Covers exactly the subset the
/// service speaks — request line + headers + Content-Length bodies,
/// keep-alive, percent-encoded query strings. No chunked encoding, no
/// TLS, no external dependency.
///
/// The same types drive both sides of the wire: the server parses
/// HttpRequest and writes HttpResponse, while tests and bench_server
/// build HttpRequest::Serialize() and parse responses with
/// ParseHttpResponse — so the protocol implementation is exercised from
/// both ends by construction.

#include <cstddef>
#include <map>
#include <string>

#include "common/status.h"
#include "server/socket.h"

namespace erq {

/// One parsed HTTP request.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercase as received)
  std::string path;    ///< decoded path without the query string
  /// Decoded query parameters (last value wins on duplicates).
  std::map<std::string, std::string> query;
  /// Header fields, keys lowercased.
  std::map<std::string, std::string> headers;
  std::string body;  ///< Content-Length bytes (may be empty)
  /// False when the client asked for `Connection: close` (HTTP/1.1
  /// default is keep-alive).
  bool keep_alive = true;

  /// Renders the request as wire bytes (client side: tests, bench).
  std::string Serialize(const std::string& host) const;
};

/// One HTTP response under construction.
struct HttpResponse {
  int status_code = 200;  ///< HTTP status (see HttpReasonPhrase)
  std::string content_type = "application/json";  ///< Content-Type header
  std::string body;  ///< response payload (JSON for every erq route)
  /// When true the response carries `Connection: close` and the server
  /// drops the connection after writing it.
  bool close = false;

  /// Renders status line + headers (Content-Length, Content-Type,
  /// Connection) + body as wire bytes.
  std::string Serialize() const;
};

/// The canonical reason phrase for a status code (fallback: "Unknown").
const char* HttpReasonPhrase(int code);

/// Maps a Status to the HTTP status code erq_server answers with:
/// OK→200, ParseError/BindError/InvalidArgument/OutOfRange/NotSupported→400,
/// NotFound→404, AlreadyExists→409, ResourceExhausted→429, else→500.
int HttpStatusFromStatus(const Status& status);

/// Percent-decodes `in` (+ becomes space). Malformed %XX sequences are
/// kept verbatim rather than rejected — query parsing must not fail a
/// whole request over one stray '%'.
std::string UrlDecode(const std::string& in);

/// Buffered reader/writer for one connection; owns the socket. Reads
/// successive requests (keep-alive) and enforces `max_request_bytes`
/// across start line + headers + body.
class HttpConnection {
 public:
  /// Takes ownership of a connected socket.
  HttpConnection(Socket socket, size_t max_request_bytes)
      : socket_(std::move(socket)), max_request_bytes_(max_request_bytes) {}

  /// Blocks for the next request. Orderly EOF between requests returns
  /// IoError("connection closed"); oversized or malformed input returns
  /// InvalidArgument/ParseError (the caller answers 400 and closes).
  ERQ_NODISCARD StatusOr<HttpRequest> ReadRequest();

  /// Serializes and writes `response`.
  ERQ_NODISCARD Status WriteResponse(const HttpResponse& response);

  /// The underlying socket (ErqServer::Stop shuts it down to wake a
  /// blocked ReadRequest).
  Socket& socket() { return socket_; }

 private:
  /// Grows `buffer_` from the socket until it holds >= `want` bytes or
  /// the wire ends.
  Status FillBuffer(size_t want);

  Socket socket_;
  size_t max_request_bytes_;
  std::string buffer_;  ///< bytes received but not yet consumed
};

/// Client-side response parsing (tests, bench, check.sh smoke): reads
/// one full response off `socket` into (status_code, body). Handles
/// Content-Length framing only — which is all our server emits.
ERQ_NODISCARD Status ReadHttpResponse(Socket* socket, int* status_code,
                                      std::string* body);

}  // namespace erq
