#include "server/server.h"

#include <chrono>

#include "common/json.h"

namespace erq {

ErqServer::ErqServer(Catalog* catalog, StatsCatalog* stats,
                     ServerOptions options)
    : catalog_(catalog),
      stats_(stats),
      options_(std::move(options)),
      tenants_(catalog_, stats_, options_),
      handler_(&tenants_),
      metrics_(ServerInstruments::Resolve()) {}

ErqServer::~ErqServer() { Stop(); }

Status ErqServer::Start() {
  if (started_) {
    return Status::InvalidArgument(
        stopping_.load(std::memory_order_acquire)
            ? "a stopped ErqServer cannot be restarted; build a new one"
            : "ErqServer is already running");
  }
  ERQ_RETURN_IF_ERROR(options_.Validate());
  ERQ_ASSIGN_OR_RETURN(
      listener_,
      Listener::Bind(options_.host, options_.port,
                     static_cast<int>(options_.max_connections)));
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ErqServer::ReapFinished() {
  std::vector<std::thread> reap;
  {
    MutexLock lock(&mu_);
    for (auto it = threads_.begin(); it != threads_.end();) {
      if (connections_.count(it->first) == 0) {
        reap.push_back(std::move(it->second));
        it = threads_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : reap) t.join();
}

void ErqServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    StatusOr<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) break;  // listener shut down (or fatal)
    metrics_.connections_total->Increment();

    // Opportunistically join threads whose connections already closed,
    // so a long-running server does not accumulate joinable handles.
    ReapFinished();

    bool reject;
    {
      MutexLock lock(&mu_);
      reject = connections_.size() >= options_.max_connections;
    }
    if (reject) {
      // Past capacity: answer 503 inline and drop, rather than queueing
      // work we cannot serve.
      metrics_.connections_rejected->Increment();
      HttpResponse busy;
      busy.status_code = 503;
      busy.close = true;
      busy.body =
          "{\"schema\":\"erq.response.v1\",\"status\":{\"code\":"
          "\"ResourceExhausted\",\"message\":\"connection limit "
          "reached\"}}";
      (void)accepted->SendAll(busy.Serialize());
      continue;
    }

    uint64_t id;
    Connection* raw;
    {
      MutexLock lock(&mu_);
      id = next_connection_id_++;
      auto conn = std::make_unique<Connection>(std::move(*accepted),
                                               options_.max_request_bytes);
      raw = conn.get();
      connections_[id] = std::move(conn);
      metrics_.connections->Set(static_cast<int64_t>(connections_.size()));
    }
    // The thread is created outside the lock (its body reacquires mu_ to
    // retire itself) and its handle registered after — only this thread
    // and Stop() ever touch threads_, and Stop() joins the accept thread
    // before draining, so the handle is always fully registered first.
    std::thread serving([this, id, raw] { ServeConnection(id, raw); });
    {
      MutexLock lock(&mu_);
      threads_[id] = std::move(serving);
    }
  }
}

void ErqServer::ServeConnection(uint64_t id, Connection* conn) {
  while (!stopping_.load(std::memory_order_acquire)) {
    StatusOr<HttpRequest> request = conn->http.ReadRequest();
    if (!request.ok()) {
      // Malformed input earns a 400; a plain disconnect just ends the
      // loop. Either way the connection is done.
      if (request.status().code() != StatusCode::kIoError) {
        HttpResponse bad;
        bad.status_code = HttpStatusFromStatus(request.status());
        bad.close = true;
        bad.body = "{\"schema\":\"erq.response.v1\",\"status\":{\"code\":" +
                   JsonQuote(StatusCodeToString(request.status().code())) +
                   ",\"message\":" + JsonQuote(request.status().message()) +
                   "}}";
        (void)conn->http.WriteResponse(bad);
        metrics_.errors->Increment();
      }
      break;
    }
    HttpResponse response = handler_.Handle(*request);
    if (!request->keep_alive) response.close = true;
    if (!conn->http.WriteResponse(response).ok()) break;
    if (response.close) break;
  }

  // Retire: erasing the map entry releases the socket and signals the
  // reapers that this thread's handle may be joined.
  MutexLock lock(&mu_);
  connections_.erase(id);
  metrics_.connections->Set(static_cast<int64_t>(connections_.size()));
}

void ErqServer::Stop() {
  if (!started_) return;
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;

  // 1. No new connections: wake the accept thread and join it.
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain: wake every serving thread blocked in recv(2); each exits
  //    its loop and retires its connection entry, after which its thread
  //    handle is joinable. The brief sleep stands in for a condition
  //    variable (banned by the lock discipline) — Stop is a cold path.
  while (true) {
    bool live;
    {
      MutexLock lock(&mu_);
      for (const auto& [id, conn] : connections_) {
        conn->http.socket().Shutdown();
      }
      live = !connections_.empty();
    }
    ReapFinished();
    {
      MutexLock lock(&mu_);
      if (connections_.empty() && threads_.empty()) break;
    }
    if (live) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace erq
