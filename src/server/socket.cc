#include "server/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace erq {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SendAll(const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<size_t> Socket::RecvSome(char* buf, size_t len) {
  while (true) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    return static_cast<size_t>(n);
  }
}

StatusOr<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  while (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    return Errno("connect");
  }
  const int one = 1;
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

StatusOr<Listener> Listener::Bind(const std::string& host, uint16_t port,
                                  int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");

  const int one = 1;
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(sock.fd(), backlog) != 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Errno("getsockname");
  }

  Listener out;
  out.socket_ = std::move(sock);
  out.port_ = ntohs(bound.sin_port);
  return out;
}

StatusOr<Socket> Listener::Accept() {
  while (true) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      // Serve small request/response bodies without Nagle batching.
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // shutdown(2) on the listening fd surfaces as EINVAL here — the
    // orderly stop signal, not a fault.
    if (errno == EINVAL) return Status::IoError("listener shut down");
    return Errno("accept");
  }
}

}  // namespace erq
