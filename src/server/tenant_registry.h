#pragma once

/// \file
/// Multi-tenant manager pool behind erq_server. Each tenant namespace
/// owns a private EmptyResultManager — its own C_aqp, cost-gate state,
/// and counters — so one tenant's harvested empties can never answer
/// (or evict) another tenant's queries. Tenants are created lazily on
/// first use; the server's global C_aqp memory budget
/// (ServerOptions::global_n_max) is split into equal static per-tenant
/// quotas so a noisy tenant cannot starve the rest. The reuse-store
/// byte budget (ServerOptions::global_reuse_bytes) is split the same
/// way: a tenant hoarding large intermediates spends only its own
/// slice.
///
/// All tenants share the server's one Catalog + StatsCatalog (the data
/// is common; only detection state is isolated).

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/config.h"
#include "core/manager.h"

namespace erq {

/// Name → EmptyResultManager map with lazy creation, per-tenant quota
/// enforcement, and per-tenant instruments. Thread-safe; the registry
/// mutex ranks below every engine lock (lock_order::kTenantRegistry) so
/// it may be held across manager construction.
class TenantRegistry {
 public:
  /// The namespace requests without an explicit tenant land in.
  static constexpr const char* kDefaultTenant = "default";

  /// One live tenant: the isolated manager plus its resolved
  /// instruments (`erq.server.tenant.<name>.*` — registered when the
  /// tenant is created, stable for the process lifetime).
  struct Tenant {
    std::string name;  ///< the namespace this tenant serves
    /// The isolated detection pipeline (own C_aqp + cost-gate state).
    std::unique_ptr<EmptyResultManager> manager;
    Counter* requests = nullptr;  ///< erq.server.tenant.<name>.requests
    Counter* errors = nullptr;    ///< erq.server.tenant.<name>.errors
  };

  /// Builds the registry over shared catalogs (borrowed; must outlive
  /// the registry). `options` supplies the tenant template config, the
  /// tenant cap, and the global budget. Call after
  /// ServerOptions::Validate() — the registry assumes a valid config.
  TenantRegistry(Catalog* catalog, StatsCatalog* stats,
                 const ServerOptions& options)
      : catalog_(catalog),
        stats_(stats),
        options_(options),
        quota_(options.global_n_max / options.max_tenants),
        reuse_quota_(options.global_reuse_bytes / options.max_tenants) {}

  /// Resolves `name` ("" = kDefaultTenant), creating the tenant on
  /// first use. Errors: InvalidArgument for names outside
  /// `[a-z0-9_]{1,32}`, ResourceExhausted once max_tenants namespaces
  /// exist, or the new manager's init_status. The returned pointer is
  /// stable for the registry's lifetime.
  ERQ_NODISCARD StatusOr<Tenant*> GetOrCreate(const std::string& name)
      ERQ_EXCLUDES(mu_);

  /// Sorted names of every live tenant.
  std::vector<std::string> TenantNames() const ERQ_EXCLUDES(mu_);

  /// Stable pointers to every live tenant (sorted by name). Tenants are
  /// never destroyed while the registry lives, so the pointers may be
  /// used after the internal lock is released.
  std::vector<Tenant*> Tenants() const ERQ_EXCLUDES(mu_);

  /// Number of live tenants.
  size_t tenant_count() const ERQ_EXCLUDES(mu_);

  /// Per-tenant C_aqp quota (global_n_max / max_tenants).
  size_t quota() const { return quota_; }

  /// Per-tenant reuse-store byte quota (global_reuse_bytes /
  /// max_tenants). Applied as each tenant's reuse.budget_bytes when the
  /// tenant template enables reuse; otherwise informational only.
  size_t reuse_quota() const { return reuse_quota_; }

  /// Propagates a table update to every tenant's manager (the admin
  /// invalidation endpoint). Returns the number of tenants notified.
  size_t InvalidateTable(const std::string& table) ERQ_EXCLUDES(mu_);

  /// True iff `name` is a valid tenant namespace: 1–32 chars of
  /// [a-z0-9_] (the charset instrument names allow, since the name is
  /// embedded in `erq.server.tenant.<name>.*`).
  static bool IsValidTenantName(const std::string& name);

 private:
  Catalog* catalog_;
  StatsCatalog* stats_;
  const ServerOptions options_;
  const size_t quota_;
  const size_t reuse_quota_;

  /// Held across lazy manager construction; every engine lock ranks
  /// above it (see lock_order.h).
  mutable Mutex mu_ ERQ_ACQUIRED_AFTER(lock_order::kTenantRegistry){
      lock_order::kTenantRegistry};
  std::map<std::string, std::unique_ptr<Tenant>> tenants_
      ERQ_GUARDED_BY(mu_);
};

}  // namespace erq
