#pragma once

/// \file
/// ReuseStore — the bounded, byte-budgeted intermediate-result store
/// (DESIGN.md §13). Generalizes C_aqp from "empty knowledge only" to
/// arbitrary low-cardinality materialized intermediates: an entry with
/// zero rows is exactly a C_aqp fact, an entry with rows answers covered
/// sub-plans without touching the base table.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/epoch.h"
#include "common/lock_order.h"
#include "common/thread_annotations.h"
#include "core/atomic_query_part.h"
#include "core/config.h"
#include "plan/reuse_source.h"
#include "types/schema.h"

namespace erq {

/// Value-type snapshot of the store's counters and gauges.
struct ReuseStoreStats {
  uint64_t lookups = 0;        ///< splice probes
  uint64_t hits = 0;           ///< probes answered from a stored entry
  uint64_t rows_served = 0;    ///< rows of the entries served on hits
  uint64_t admitted = 0;       ///< entries stored (incl. replacements)
  uint64_t rejected = 0;       ///< admissions refused (size/budget/shape)
  uint64_t evictions = 0;      ///< entries displaced by benefit-per-byte
  uint64_t invalidated = 0;    ///< entries dropped by update invalidation
  uint64_t entries = 0;        ///< gauge: live entries
  uint64_t bytes = 0;          ///< gauge: estimated footprint of live rows
};

/// The intermediate-result reuse store. Keyed by the same atomic-part
/// normal form as C_aqp: each entry is (AtomicQueryPart over one base
/// relation, materialized rows of sigma_condition(relation)). Harvested
/// opportunistically by EmptyResultManager from Filter-over-TableScan
/// outputs of executed high-cost queries; probed by the optimizer's
/// splice pass through the ReuseSpliceSource interface.
///
/// Concurrency model mirrors CaqpCache's read-mostly split:
///   * Lookup() is lock-free: it walks an immutable index published
///     behind an atomic pointer inside an epoch critical section. Hit
///     bookkeeping (hit counts, recency) lives in relaxed atomics shared
///     between writer state and every published snapshot.
///   * Mutators (Admit, the invalidation hooks, Clear) serialize on one
///     mutex at lock_order::kReuseStore and epoch-retire each replaced
///     snapshot, so readers never touch freed memory.
///
/// Invalidation semantics differ from C_aqp's in exactly one place:
/// deletions. A deletion can never un-empty an empty result (C_aqp keeps
/// everything), but it CAN shrink a non-empty cached intermediate — so
/// OnRelationDeleted() drops every non-empty entry of the relation and
/// keeps the zero-row ones. Inserts go through the same §5 update filter
/// as C_aqp (core/update_filter.h): a row that provably fails an entry's
/// condition cannot change sigma_condition(relation), so the entry
/// survives; anything else is dropped (conservative, never stale).
class ReuseStore final : public ReuseSpliceSource {
 public:
  explicit ReuseStore(ReuseConfig config);

  /// Reconciles the global `erq.reuse.{entries,bytes}` gauges and
  /// reclaims every retired snapshot. No lookup may be in flight.
  ~ReuseStore() override;

  ReuseStore(const ReuseStore&) = delete;
  ReuseStore& operator=(const ReuseStore&) = delete;

  /// ReuseSpliceSource: finds the smallest (fewest-row) entry over
  /// `relation` whose stored condition covers `condition`. Lock-free;
  /// counts erq.reuse.{lookups,hits,rows_served} and bumps the winning
  /// entry's recency.
  std::optional<ReuseSplice> Lookup(
      const std::string& relation,
      const Conjunction& condition) const override;

  /// Offers one harvested intermediate: `part` must be a single-relation
  /// atomic query part (the normal form DecomposePhysicalPart produced
  /// from the Filter-over-TableScan subtree) and `rows` its complete
  /// materialized output in ascending row order. `saved_cost` is the
  /// optimizer's cost estimate for the subtree the entry would replace —
  /// the numerator of the benefit-per-byte eviction score. Returns true
  /// when the entry was stored (an entry Equals()-matching an existing
  /// one replaces it in place, refreshing the rows).
  bool Admit(const AtomicQueryPart& part,
             std::shared_ptr<const std::vector<Row>> rows, double saved_cost)
      ERQ_EXCLUDES(mu_);

  /// Insert invalidation (§5 update filter): drops every entry of
  /// `base_name` that `rows` could affect — i.e. unless every inserted
  /// row provably fails the entry's condition. Returns entries dropped.
  size_t OnRelationInserted(const std::string& base_name, const Schema& schema,
                            const std::vector<Row>& rows) ERQ_EXCLUDES(mu_);

  /// Deletion invalidation: drops the non-empty entries of `base_name`
  /// (their row sets may have shrunk); zero-row entries survive —
  /// deletions cannot un-empty a result. Returns entries dropped.
  size_t OnRelationDeleted(const std::string& base_name) ERQ_EXCLUDES(mu_);

  /// Opaque update (no row information) or table drop: every entry of
  /// `base_name` goes. Returns entries dropped.
  size_t OnRelationUpdated(const std::string& base_name) ERQ_EXCLUDES(mu_);

  /// Drops every entry (tests / tooling).
  void Clear() ERQ_EXCLUDES(mu_);

  /// Relaxed value-type snapshot of the counters plus live gauges.
  ReuseStoreStats stats_snapshot() const ERQ_EXCLUDES(mu_);

  /// One line per live entry — "id relation | condition | rows bytes
  /// hits" — for tools/cache_inspect's reuse preview. Ordered by entry id.
  std::vector<std::string> DescribeEntries() const ERQ_EXCLUDES(mu_);

  /// The admission/budget configuration this store was built with.
  const ReuseConfig& config() const { return config_; }

 private:
  /// One stored intermediate, shared between writer state and every
  /// published snapshot (and with in-flight spliced plans via
  /// `rows`, so eviction never frees rows a plan still reads).
  struct Entry {
    uint64_t id = 0;
    AtomicQueryPart part;  // single-relation by construction
    std::shared_ptr<const std::vector<Row>> rows;
    size_t bytes = 0;       // estimated footprint of `rows`
    double saved_cost = 0;  // optimizer estimate of the replaced subtree
    // Mutated lock-free by Lookup: relaxed atomics, mutable so the
    // reader path stays const.
    mutable std::atomic<uint64_t> hits{0};
    mutable std::atomic<uint64_t> last_use{0};
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  /// Immutable index snapshot readers walk under an epoch guard:
  /// relation name -> entries over that relation. Replaced wholesale on
  /// every mutation (the store is small — entries are few and large,
  /// unlike C_aqp's many tiny parts — so wholesale republication is the
  /// simple choice).
  using Index = std::unordered_map<std::string, std::vector<EntryPtr>>;

  /// Benefit-per-byte eviction score: cheapest-to-lose first. Recency
  /// enters through the hit count; `last_use` breaks ties.
  static double Score(const Entry& entry);

  /// Rebuilds and publishes the index from `entries_`, epoch-retiring the
  /// predecessor.
  void PublishLocked() ERQ_REQUIRES(mu_);

  /// Drops entries matching `pred`, counting them as invalidations;
  /// returns the number dropped and republishes when nonzero.
  size_t DropIfLocked(const std::function<bool(const Entry&)>& pred)
      ERQ_REQUIRES(mu_);

  const ReuseConfig config_;

  mutable Mutex mu_ ERQ_ACQUIRED_AFTER(lock_order::kReuseStore)
      ERQ_ACQUIRED_BEFORE(lock_order::kEpoch){lock_order::kReuseStore};
  std::vector<std::shared_ptr<Entry>> entries_ ERQ_GUARDED_BY(mu_);
  size_t bytes_ ERQ_GUARDED_BY(mu_) = 0;
  uint64_t next_id_ ERQ_GUARDED_BY(mu_) = 1;

  // The published snapshot; never null after construction. Writers
  // exchange under mu_ and epoch-retire the predecessor; readers load
  // (acquire) inside an epoch critical section.
  std::atomic<const Index*> published_{nullptr};

  // Recency clock bumped by lookup hits; lock-free.
  mutable std::atomic<uint64_t> seq_{0};

  // Counter half of ReuseStoreStats in relaxed atomics (lock-free
  // lookups update statistics without the mutex).
  mutable std::atomic<uint64_t> lookups_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> rows_served_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidated_{0};

  // Reclamation domain for published snapshots.
  mutable EpochManager epoch_;
};

/// Estimated in-memory footprint of one materialized row (values plus
/// string payloads) — the unit the byte budget is accounted in.
size_t EstimateRowBytes(const Row& row);

}  // namespace erq
