#include "reuse/reuse_store.h"

#include <algorithm>
#include <limits>

#include "common/metrics.h"
#include "common/string_util.h"
#include "core/serialize.h"
#include "core/update_filter.h"

namespace erq {

namespace {

/// Reuse-store instruments, resolved once (see metrics.h). The gauges
/// aggregate across instances; each store's destructor subtracts its own
/// live contribution (the erq.caqp.size discipline).
struct ReuseMetrics {
  Counter* lookups;
  Counter* hits;
  Counter* rows_served;
  Counter* admitted;
  Counter* rejected;
  Counter* evictions;
  Counter* invalidated;
  Gauge* entries;
  Gauge* bytes;

  static const ReuseMetrics& Get() {
    static const ReuseMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return ReuseMetrics{
          r.GetCounter("erq.reuse.lookups"),
          r.GetCounter("erq.reuse.hits"),
          r.GetCounter("erq.reuse.rows_served"),
          r.GetCounter("erq.reuse.admitted"),
          r.GetCounter("erq.reuse.rejected"),
          r.GetCounter("erq.reuse.evictions"),
          r.GetCounter("erq.reuse.invalidated"),
          r.GetGauge("erq.reuse.entries"),
          r.GetGauge("erq.reuse.bytes"),
      };
    }();
    return m;
  }
};

/// Fixed per-entry overhead charged on top of the row payload, so even a
/// zero-row entry has a nonzero footprint and the budget bounds entry
/// count, not just row bytes.
constexpr size_t kEntryOverheadBytes = 64;

}  // namespace

size_t EstimateRowBytes(const Row& row) {
  size_t bytes = sizeof(Row) + row.size() * sizeof(Value);
  for (const Value& v : row) {
    if (v.type() == DataType::kString) bytes += v.AsString().size();
  }
  return bytes;
}

ReuseStore::ReuseStore(ReuseConfig config) : config_(config) {
  published_.store(new Index(), std::memory_order_release);
}

ReuseStore::~ReuseStore() {
  const ReuseMetrics& m = ReuseMetrics::Get();
  {
    MutexLock lock(&mu_);
    m.entries->Add(-static_cast<int64_t>(entries_.size()));
    m.bytes->Add(-static_cast<int64_t>(bytes_));
    entries_.clear();
  }
  delete published_.exchange(nullptr, std::memory_order_acq_rel);
  epoch_.ReclaimAll();
}

double ReuseStore::Score(const Entry& entry) {
  // Benefit per byte: what the entry saves per execution, amplified by how
  // often it has actually been spliced, relative to what it costs to keep.
  double benefit = entry.saved_cost *
                   (1.0 + static_cast<double>(
                              entry.hits.load(std::memory_order_relaxed)));
  return benefit / static_cast<double>(entry.bytes + 1);
}

std::optional<ReuseSplice> ReuseStore::Lookup(
    const std::string& relation, const Conjunction& condition) const {
  const ReuseMetrics& m = ReuseMetrics::Get();
  lookups_.fetch_add(1, std::memory_order_relaxed);
  m.lookups->Increment();

  const Entry* best = nullptr;
  {
    EpochReadGuard guard(&epoch_);
    const Index* index = published_.load(std::memory_order_acquire);
    auto it = index->find(relation);
    if (it != index->end()) {
      for (const EntryPtr& entry : it->second) {
        // Theorem 2 in the reuse direction: the stored condition covering
        // the probe means probe => stored, so the probed sub-plan's output
        // is a subset of the cached rows. Prefer the smallest superset —
        // less residual work downstream.
        if (!entry->part.condition().Covers(condition)) continue;
        if (best == nullptr || entry->rows->size() < best->rows->size()) {
          best = entry.get();
        }
      }
    }
    if (best == nullptr) return std::nullopt;
    best->hits.fetch_add(1, std::memory_order_relaxed);
    best->last_use.store(seq_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    rows_served_.fetch_add(best->rows->size(), std::memory_order_relaxed);
    m.hits->Increment();
    m.rows_served->Increment(best->rows->size());
    ReuseSplice splice;
    splice.rows = best->rows;  // shared_ptr copy taken inside the epoch:
                               // safe against concurrent eviction
    splice.stored_condition = best->part.condition();
    splice.entry_id = best->id;
    return splice;
  }
}

bool ReuseStore::Admit(const AtomicQueryPart& part,
                       std::shared_ptr<const std::vector<Row>> rows,
                       double saved_cost) {
  const ReuseMetrics& m = ReuseMetrics::Get();
  if (!config_.enabled || rows == nullptr ||
      part.relations().size() != 1 || rows->size() > config_.max_rows) {
    m.rejected->Increment();
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  size_t entry_bytes = kEntryOverheadBytes;
  for (const Row& row : *rows) entry_bytes += EstimateRowBytes(row);
  if (entry_bytes > config_.budget_bytes) {
    m.rejected->Increment();
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  MutexLock lock(&mu_);
  int64_t entry_delta = 0;
  // Structurally identical part: refresh in place (newer rows win — the
  // old ones may predate an intervening execution).
  for (std::shared_ptr<Entry>& existing : entries_) {
    if (!existing->part.Equals(part)) continue;
    size_t old_bytes = existing->bytes;
    std::shared_ptr<Entry> fresh = std::make_shared<Entry>();
    fresh->id = existing->id;
    fresh->part = part;
    fresh->rows = std::move(rows);
    fresh->bytes = entry_bytes;
    fresh->saved_cost = saved_cost;
    fresh->hits.store(existing->hits.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    fresh->last_use.store(existing->last_use.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    existing = std::move(fresh);
    bytes_ = bytes_ - old_bytes + entry_bytes;
    m.bytes->Add(static_cast<int64_t>(entry_bytes) -
                 static_cast<int64_t>(old_bytes));
    admitted_.fetch_add(1, std::memory_order_relaxed);
    m.admitted->Increment();
    PublishLocked();
    return true;
  }

  // Make room: evict the lowest benefit-per-byte entries (oldest last_use
  // breaks ties) until the newcomer fits.
  while (bytes_ + entry_bytes > config_.budget_bytes && !entries_.empty()) {
    size_t victim = 0;
    double victim_score = std::numeric_limits<double>::infinity();
    uint64_t victim_use = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < entries_.size(); ++i) {
      double score = Score(*entries_[i]);
      uint64_t use = entries_[i]->last_use.load(std::memory_order_relaxed);
      if (score < victim_score ||
          (score == victim_score && use < victim_use)) {
        victim = i;
        victim_score = score;
        victim_use = use;
      }
    }
    bytes_ -= entries_[victim]->bytes;
    m.bytes->Add(-static_cast<int64_t>(entries_[victim]->bytes));
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(victim));
    --entry_delta;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    m.evictions->Increment();
  }

  std::shared_ptr<Entry> entry = std::make_shared<Entry>();
  entry->id = next_id_++;
  entry->part = part;
  entry->rows = std::move(rows);
  entry->bytes = entry_bytes;
  entry->saved_cost = saved_cost;
  entries_.push_back(std::move(entry));
  bytes_ += entry_bytes;
  ++entry_delta;
  m.bytes->Add(static_cast<int64_t>(entry_bytes));
  m.entries->Add(entry_delta);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  m.admitted->Increment();
  PublishLocked();
  return true;
}

size_t ReuseStore::DropIfLocked(
    const std::function<bool(const Entry&)>& pred) {
  const ReuseMetrics& m = ReuseMetrics::Get();
  size_t dropped = 0;
  for (size_t i = entries_.size(); i-- > 0;) {
    if (!pred(*entries_[i])) continue;
    bytes_ -= entries_[i]->bytes;
    m.bytes->Add(-static_cast<int64_t>(entries_[i]->bytes));
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
    ++dropped;
  }
  if (dropped > 0) {
    m.entries->Add(-static_cast<int64_t>(dropped));
    m.invalidated->Increment(dropped);
    invalidated_.fetch_add(dropped, std::memory_order_relaxed);
    PublishLocked();
  }
  return dropped;
}

size_t ReuseStore::OnRelationInserted(const std::string& base_name,
                                      const Schema& schema,
                                      const std::vector<Row>& rows) {
  std::string canonical = ToLower(base_name);
  MutexLock lock(&mu_);
  return DropIfLocked([&](const Entry& entry) {
    if (!entry.part.relations().Contains(canonical)) return false;
    // §5 update filter, shared with C_aqp: an insert whose rows all
    // provably fail the entry's condition cannot change
    // sigma_condition(relation); anything else could grow the cached set,
    // so the entry must go (conservative — never stale).
    return InsertsAreRelevant(entry.part, canonical, schema, rows);
  });
}

size_t ReuseStore::OnRelationDeleted(const std::string& base_name) {
  std::string canonical = ToLower(base_name);
  MutexLock lock(&mu_);
  return DropIfLocked([&](const Entry& entry) {
    // The asymmetry with C_aqp: deleting rows can shrink a non-empty
    // cached intermediate (stale superset-with-extras is NOT sound — the
    // spliced scan would emit deleted rows), but an empty one stays empty.
    return entry.part.relations().Contains(canonical) &&
           !entry.rows->empty();
  });
}

size_t ReuseStore::OnRelationUpdated(const std::string& base_name) {
  std::string canonical = ToLower(base_name);
  MutexLock lock(&mu_);
  return DropIfLocked([&](const Entry& entry) {
    return entry.part.relations().Contains(canonical);
  });
}

void ReuseStore::Clear() {
  MutexLock lock(&mu_);
  DropIfLocked([](const Entry&) { return true; });
}

void ReuseStore::PublishLocked() {
  Index* next = new Index();
  for (const std::shared_ptr<Entry>& entry : entries_) {
    (*next)[entry->part.relations().names().front()].push_back(entry);
  }
  const Index* old =
      published_.exchange(next, std::memory_order_acq_rel);
  epoch_.Retire([old] { delete old; });
  epoch_.TryReclaim();
}

ReuseStoreStats ReuseStore::stats_snapshot() const {
  ReuseStoreStats out;
  out.lookups = lookups_.load(std::memory_order_relaxed);
  out.hits = hits_.load(std::memory_order_relaxed);
  out.rows_served = rows_served_.load(std::memory_order_relaxed);
  out.admitted = admitted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidated = invalidated_.load(std::memory_order_relaxed);
  {
    MutexLock lock(&mu_);
    out.entries = entries_.size();
    out.bytes = bytes_;
  }
  return out;
}

std::vector<std::string> ReuseStore::DescribeEntries() const {
  std::vector<std::string> out;
  MutexLock lock(&mu_);
  out.reserve(entries_.size());
  std::vector<const Entry*> ordered;
  ordered.reserve(entries_.size());
  for (const std::shared_ptr<Entry>& e : entries_) ordered.push_back(e.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Entry* a, const Entry* b) { return a->id < b->id; });
  for (const Entry* e : ordered) {
    // The C_aqp text normal form (core/serialize.h) keeps the preview
    // consistent with cache_inspect's C_aqp dump.
    StatusOr<std::string> serialized = SerializePart(e->part);
    std::string line = "#" + std::to_string(e->id) + " " +
                       (serialized.ok() ? *serialized : e->part.ToString());
    line += " | rows=" + std::to_string(e->rows->size());
    line += " bytes=" + std::to_string(e->bytes);
    line += " hits=" +
            std::to_string(e->hits.load(std::memory_order_relaxed));
    out.push_back(std::move(line));
  }
  return out;
}

}  // namespace erq
