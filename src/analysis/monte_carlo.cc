#include "analysis/monte_carlo.h"

#include <random>
#include <unordered_set>
#include <vector>

namespace erq {

double SimulateCase1(size_t K, size_t N, int m, size_t trials, uint64_t seed) {
  std::mt19937_64 rng(seed);
  if (N > K) N = K;
  std::uniform_int_distribution<size_t> tuple_dist(0, K - 1);
  size_t detected = 0;
  for (size_t t = 0; t < trials; ++t) {
    // Store a fresh random subset of size N each trial (the identity of
    // the stored tuples is part of the random state).
    std::unordered_set<size_t> stored;
    while (stored.size() < N) stored.insert(tuple_dist(rng));
    bool all_found = true;
    for (int i = 0; i < m; ++i) {
      if (stored.count(tuple_dist(rng)) == 0) {
        all_found = false;
        break;
      }
    }
    if (all_found) ++detected;
  }
  return static_cast<double>(detected) / static_cast<double>(trials);
}

double SimulateCase2Unbounded(int n, size_t N, size_t trials, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  size_t detected = 0;
  std::vector<double> query(n);
  std::vector<std::vector<double>> stored(N, std::vector<double>(n));
  for (size_t t = 0; t < trials; ++t) {
    for (auto& cond : stored) {
      for (double& c : cond) c = u(rng);
    }
    for (double& c : query) c = u(rng);
    bool covered = false;
    for (const auto& cond : stored) {
      bool dominates = true;
      for (int i = 0; i < n; ++i) {
        // Stored "c' < a" covers query "c < a" iff c' <= c.
        if (cond[i] > query[i]) {
          dominates = false;
          break;
        }
      }
      if (dominates) {
        covered = true;
        break;
      }
    }
    if (covered) ++detected;
  }
  return static_cast<double>(detected) / static_cast<double>(trials);
}

double SimulateCase2Bounded(int n, size_t N, size_t trials, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  auto draw_interval = [&](double* lo, double* hi) {
    double a = u(rng), b = u(rng);
    if (a > b) std::swap(a, b);
    *lo = a;
    *hi = b;
  };
  size_t detected = 0;
  std::vector<std::pair<double, double>> query(n);
  std::vector<std::vector<std::pair<double, double>>> stored(
      N, std::vector<std::pair<double, double>>(n));
  for (size_t t = 0; t < trials; ++t) {
    for (auto& cond : stored) {
      for (auto& iv : cond) draw_interval(&iv.first, &iv.second);
    }
    for (auto& iv : query) draw_interval(&iv.first, &iv.second);
    bool covered = false;
    for (const auto& cond : stored) {
      bool contains = true;
      for (int i = 0; i < n; ++i) {
        // Stored (c', d') covers query (c, d) iff c' <= c and d <= d'.
        if (cond[i].first > query[i].first ||
            cond[i].second < query[i].second) {
          contains = false;
          break;
        }
      }
      if (contains) {
        covered = true;
        break;
      }
    }
    if (covered) ++detected;
  }
  return static_cast<double>(detected) / static_cast<double>(trials);
}

double SimulateCase3(double q, int m, size_t N, size_t trials, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution covers(q);
  size_t detected = 0;
  for (size_t t = 0; t < trials; ++t) {
    bool all_terms = true;
    for (int term = 0; term < m; ++term) {
      bool term_covered = false;
      for (size_t part = 0; part < N; ++part) {
        if (covers(rng)) {
          term_covered = true;
          break;
        }
      }
      if (!term_covered) {
        all_terms = false;
        break;
      }
    }
    if (all_terms) ++detected;
  }
  return static_cast<double>(detected) / static_cast<double>(trials);
}

}  // namespace erq
