#include "analysis/detection_model.h"

#include <algorithm>
#include <cmath>

namespace erq {

double Case1DetectionProbability(double p, int m) {
  p = std::clamp(p, 0.0, 1.0);
  return std::pow(p, m);
}

double Case2UnboundedDetectionProbability(int n, double N) {
  double per = std::pow(0.5, n);
  return 1.0 - std::pow(1.0 - per, N);
}

double Case2BoundedDetectionProbability(int n, double N) {
  double per = std::pow(1.0 / 6.0, n);
  return 1.0 - std::pow(1.0 - per, N);
}

double Case2UnboundedExactDetectionProbability(int n, double N) {
  if (n == 1) return N / (N + 1.0);
  // E[(1-u)^N] with u = prod of n uniforms, density (-ln u)^{n-1}/(n-1)!.
  // Substitute u = e^{-t}, t in (0, inf): integral becomes
  //   \int_0^inf (1 - e^{-t})^N t^{n-1} e^{-t} / (n-1)! dt,
  // evaluated with composite Simpson on t in (0, T] with T large enough
  // that the Gamma tail is negligible.
  double log_fact = 0.0;
  for (int i = 2; i < n; ++i) log_fact += std::log(static_cast<double>(i));
  const double T = 60.0 + 4.0 * n;
  const int steps = 20000;  // even
  const double h = T / steps;
  auto f = [&](double t) {
    if (t <= 0.0) return 0.0;
    double log_term = N * std::log1p(-std::exp(-t)) +
                      (n - 1) * std::log(t) - t - log_fact;
    return std::exp(log_term);
  };
  double sum = f(0.0) + f(T);
  for (int i = 1; i < steps; ++i) {
    sum += f(i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  double expectation = sum * h / 3.0;
  return 1.0 - std::clamp(expectation, 0.0, 1.0);
}

double Case3DetectionProbability(double q, int m, double N) {
  q = std::clamp(q, 0.0, 1.0);
  double term_covered = 1.0 - std::pow(1.0 - q, N);
  return std::pow(term_covered, m);
}

}  // namespace erq
