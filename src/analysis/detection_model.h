#pragma once

namespace erq {

/// Closed-form detection probabilities of §3.2. D_p is the probability
/// that the method detects an empty-result query without executing it,
/// given the stored state of C_aqp.

/// Case 1 (point-based comparisons): the selection condition is a
/// disjunction of m terms, each an n-conjunction of point predicates; a
/// fraction p = N/K of the empty n-tuples is stored. D_p = p^m.
double Case1DetectionProbability(double p, int m);

/// Case 2 (unbounded-interval comparisons, n primitive terms, N stored
/// conditions with uniform endpoints): D_p = 1 - (1 - 2^-n)^N.
double Case2UnboundedDetectionProbability(int n, double N);

/// Case 2 variant with bounded intervals c_i < a < d_i:
/// D_p = 1 - (1 - 6^-n)^N.
double Case2BoundedDetectionProbability(int n, double N);

/// Exact Case-2 detection probability. The paper's 1-(1-2^-n)^N treats the
/// N "stored condition covers the query" events as independent; they are
/// only conditionally independent given the query endpoints, so the paper's
/// closed form is an upper bound (Jensen: (1-x)^N is convex). The exact
/// value is D_p = 1 - E[(1 - prod_i c_i)^N] with c_i ~ U(0,1), evaluated
/// here by Gauss-Legendre quadrature over the product's distribution:
/// f_n(u) = (-ln u)^{n-1} / (n-1)!.
/// For n = 1 this reduces to N / (N + 1).
double Case2UnboundedExactDetectionProbability(int n, double N);

/// Case 3 (mixed, per-term coverage probability q, m disjuncts, N stored
/// parts): D_p = (1 - (1-q)^N)^m.
double Case3DetectionProbability(double q, int m, double N);

}  // namespace erq

