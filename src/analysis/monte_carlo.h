#pragma once

#include <cstddef>
#include <cstdint>

namespace erq {

/// Monte-Carlo cross-validation of the §3.2 closed forms. Each simulator
/// draws stored-cache states and empty queries from the model's stated
/// distributions and reports the empirical detection rate. Figures 10–12
/// print analytic and simulated values side by side.

/// Case 1: K empty n-tuples exist; N distinct ones are stored; a query has
/// m disjuncts, each an independent uniform draw from the K tuples.
double SimulateCase1(size_t K, size_t N, int m, size_t trials, uint64_t seed);

/// Case 2 (unbounded): N stored conditions with n uniform endpoints; query
/// covered iff some stored condition dominates it component-wise.
double SimulateCase2Unbounded(int n, size_t N, size_t trials, uint64_t seed);

/// Case 2 (bounded): intervals (c_i, d_i) with c_i < d_i (rejection
/// sampled); query covered iff some stored interval vector contains it.
double SimulateCase2Bounded(int n, size_t N, size_t trials, uint64_t seed);

/// Case 3: per-(term, stored-part) coverage is Bernoulli(q) independent;
/// the query needs every one of its m terms covered by some stored part.
double SimulateCase3(double q, int m, size_t N, size_t trials, uint64_t seed);

}  // namespace erq

