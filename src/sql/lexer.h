#pragma once

#include <string>
#include <vector>

#include "common/statusor.h"
#include "sql/token.h"

namespace erq {

/// Tokenizes a SQL string. Keywords are recognized case-insensitively and
/// normalized to upper case; identifiers keep their original case (matching
/// is case-insensitive downstream). String literals use single quotes with
/// '' as the escape. `--` starts a line comment.
class Lexer {
 public:
  explicit Lexer(std::string input) : input_(std::move(input)) {}

  /// Tokenizes the whole input; the final token is always kEof.
  StatusOr<std::vector<Token>> Tokenize();

 private:
  StatusOr<Token> Next();
  void SkipWhitespaceAndComments();
  char Peek(size_t ahead = 0) const;
  bool AtEnd() const { return pos_ >= input_.size(); }

  std::string input_;
  size_t pos_ = 0;
};

}  // namespace erq

