#pragma once

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace erq {

/// A base-table reference in a FROM clause. `alias` is never empty: it
/// defaults to the table name. Self-joins get distinct aliases from the
/// user, or the planner renames repeated occurrences (§2.1).
struct TableRef {
  std::string table_name;
  std::string alias;

  std::string ToString() const {
    return alias == table_name ? table_name : table_name + " AS " + alias;
  }
};

enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncToString(AggFunc f);

/// One item of the SELECT list.
struct SelectItem {
  enum class Kind {
    kStar,       // SELECT *
    kExpr,       // plain expression (usually a column ref)
    kAggregate,  // agg(expr) or COUNT(*)
  };
  Kind kind = Kind::kExpr;
  ExprPtr expr;  // null for kStar and COUNT(*)
  AggFunc agg = AggFunc::kCount;
  bool count_star = false;
  std::string alias;  // optional output name

  std::string ToString() const;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

enum class JoinType { kInner, kLeftOuter };

/// An explicit `JOIN <table> ON <cond>` element. Inner joins are desugared
/// into the FROM list + WHERE conjunct by the parser; only outer joins are
/// retained here (the planner treats them per §2.5(3)).
struct OuterJoin {
  JoinType type = JoinType::kLeftOuter;
  TableRef right;
  ExprPtr condition;
};

struct Statement;

/// An `operand IN (SELECT ...)` predicate. The paper's SPJ class includes
/// "nested queries that can be rewritten into such a form"; we rewrite
/// IN-subqueries to semi-joins, which are emptiness-equivalent to joins
/// (the implicit projection/dedup falls to transformation T1). In the
/// WHERE tree the predicate is represented by a marker column reference
/// "$subq<index>" that the planner resolves against this list; markers are
/// only supported as top-level AND conjuncts.
struct InSubquery {
  ExprPtr operand;
  std::unique_ptr<Statement> query;
};

/// Marker column name for in_subqueries[i].
std::string SubqueryMarkerName(size_t index);
/// Parses a marker name back to an index; -1 if not a marker.
int ParseSubqueryMarker(const std::string& column_name);

/// A single SELECT block (no set operators).
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<OuterJoin> outer_joins;
  ExprPtr where;  // null when absent
  std::vector<InSubquery> in_subqueries;
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // null when absent
  std::vector<OrderItem> order_by;

  bool HasAggregates() const;
  std::string ToString() const;
};

/// A query: a SELECT or a set-operation tree over SELECTs.
struct Statement {
  enum class Op { kSelect, kUnion, kExcept };
  Op op = Op::kSelect;
  bool all = false;  // UNION ALL / EXCEPT ALL
  std::unique_ptr<SelectStatement> select;    // when op == kSelect
  std::unique_ptr<Statement> left, right;     // when op is a set op

  std::string ToString() const;
};

}  // namespace erq

