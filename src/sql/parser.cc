#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"
#include "types/date.h"

namespace erq {

namespace {

/// Maps an aggregate function name to its enum; false if not an aggregate.
bool LookupAggFunc(const std::string& name, AggFunc* out) {
  if (EqualsIgnoreCase(name, "count")) {
    *out = AggFunc::kCount;
  } else if (EqualsIgnoreCase(name, "sum")) {
    *out = AggFunc::kSum;
  } else if (EqualsIgnoreCase(name, "min")) {
    *out = AggFunc::kMin;
  } else if (EqualsIgnoreCase(name, "max")) {
    *out = AggFunc::kMax;
  } else if (EqualsIgnoreCase(name, "avg")) {
    *out = AggFunc::kAvg;
  } else {
    return false;
  }
  return true;
}

}  // namespace

StatusOr<std::unique_ptr<Statement>> Parser::Parse(const std::string& sql) {
  Lexer lexer(sql);
  ERQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  ERQ_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt, parser.ParseQuery());
  if (parser.Peek().type != TokenType::kEof) {
    return parser.ErrorHere("unexpected trailing input");
  }
  return stmt;
}

StatusOr<ExprPtr> Parser::ParseExpression(const std::string& text) {
  Lexer lexer(text);
  ERQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  ERQ_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseExpr());
  if (parser.Peek().type != TokenType::kEof) {
    return parser.ErrorHere("unexpected trailing input");
  }
  return expr;
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // EOF token
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& tok = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::CheckKeyword(const char* kw) const { return Peek().IsKeyword(kw); }

bool Parser::MatchKeyword(const char* kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!MatchKeyword(kw)) {
    return ErrorHere(std::string("expected ") + kw);
  }
  return Status::OK();
}

bool Parser::Match(TokenType t) {
  if (Peek().type == t) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType t, const char* what) {
  if (!Match(t)) {
    return ErrorHere(std::string("expected ") + what);
  }
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& message) const {
  return Status::ParseError(message + ", got " + Peek().ToString() +
                            " at offset " + std::to_string(Peek().position));
}

StatusOr<std::unique_ptr<Statement>> Parser::ParseQuery() {
  ERQ_ASSIGN_OR_RETURN(std::unique_ptr<Statement> left, ParseBlock());
  while (CheckKeyword("UNION") || CheckKeyword("EXCEPT")) {
    bool is_union = MatchKeyword("UNION");
    if (!is_union) ERQ_RETURN_IF_ERROR(ExpectKeyword("EXCEPT"));
    bool all = MatchKeyword("ALL");
    ERQ_ASSIGN_OR_RETURN(std::unique_ptr<Statement> right, ParseBlock());
    auto node = std::make_unique<Statement>();
    node->op = is_union ? Statement::Op::kUnion : Statement::Op::kExcept;
    node->all = all;
    node->left = std::move(left);
    node->right = std::move(right);
    left = std::move(node);
  }
  return left;
}

StatusOr<std::unique_ptr<Statement>> Parser::ParseBlock() {
  if (Match(TokenType::kLParen)) {
    ERQ_ASSIGN_OR_RETURN(std::unique_ptr<Statement> inner, ParseQuery());
    ERQ_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return inner;
  }
  ERQ_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> select, ParseSelect());
  auto stmt = std::make_unique<Statement>();
  stmt->op = Statement::Op::kSelect;
  stmt->select = std::move(select);
  return stmt;
}

StatusOr<TableRef> Parser::ParseTableRef() {
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name");
  }
  TableRef ref;
  ref.table_name = Advance().text;
  ref.alias = ref.table_name;
  if (MatchKeyword("AS")) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected alias after AS");
    }
    ref.alias = Advance().text;
  } else if (Peek().type == TokenType::kIdentifier) {
    ref.alias = Advance().text;
  }
  return ref;
}

StatusOr<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  // Aggregate: ident '(' ... ')' where ident is a known agg function.
  if (Peek().type == TokenType::kIdentifier &&
      Peek(1).type == TokenType::kLParen) {
    AggFunc func;
    if (LookupAggFunc(Peek().text, &func)) {
      Advance();  // function name
      Advance();  // '('
      item.kind = SelectItem::Kind::kAggregate;
      item.agg = func;
      if (Peek().type == TokenType::kStar) {
        if (func != AggFunc::kCount) {
          return ErrorHere("'*' argument is only valid for COUNT");
        }
        Advance();
        item.count_star = true;
      } else {
        ERQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      ERQ_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
  }
  if (item.kind != SelectItem::Kind::kAggregate) {
    item.kind = SelectItem::Kind::kExpr;
    ERQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  }
  if (MatchKeyword("AS")) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected alias after AS");
    }
    item.alias = Advance().text;
  } else if (Peek().type == TokenType::kIdentifier) {
    item.alias = Advance().text;
  }
  return item;
}

StatusOr<std::unique_ptr<SelectStatement>> Parser::ParseSelect() {
  ERQ_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto select = std::make_unique<SelectStatement>();
  select->distinct = MatchKeyword("DISTINCT");

  // Select list.
  if (Match(TokenType::kStar)) {
    SelectItem star;
    star.kind = SelectItem::Kind::kStar;
    select->items.push_back(std::move(star));
  } else {
    do {
      ERQ_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      select->items.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }

  ERQ_RETURN_IF_ERROR(ExpectKeyword("FROM"));

  std::vector<ExprPtr> join_conjuncts;
  do {
    ERQ_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
    select->from.push_back(std::move(ref));
    // Join suffixes bind to the current from_item.
    while (true) {
      if (CheckKeyword("JOIN") || CheckKeyword("INNER")) {
        MatchKeyword("INNER");
        ERQ_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        ERQ_ASSIGN_OR_RETURN(TableRef right, ParseTableRef());
        ERQ_RETURN_IF_ERROR(ExpectKeyword("ON"));
        ERQ_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
        select->from.push_back(std::move(right));
        join_conjuncts.push_back(std::move(cond));
      } else if (CheckKeyword("CROSS")) {
        Advance();
        ERQ_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        ERQ_ASSIGN_OR_RETURN(TableRef right, ParseTableRef());
        select->from.push_back(std::move(right));
      } else if (CheckKeyword("LEFT")) {
        Advance();
        MatchKeyword("OUTER");
        ERQ_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        ERQ_ASSIGN_OR_RETURN(TableRef right, ParseTableRef());
        ERQ_RETURN_IF_ERROR(ExpectKeyword("ON"));
        ERQ_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
        OuterJoin oj;
        oj.type = JoinType::kLeftOuter;
        oj.right = std::move(right);
        oj.condition = std::move(cond);
        select->outer_joins.push_back(std::move(oj));
      } else if (CheckKeyword("RIGHT") || CheckKeyword("FULL")) {
        return ErrorHere("RIGHT/FULL OUTER JOIN not supported");
      } else {
        break;
      }
    }
  } while (Match(TokenType::kComma));

  if (MatchKeyword("WHERE")) {
    std::vector<InSubquery>* saved = current_subqueries_;
    current_subqueries_ = &select->in_subqueries;
    auto where = ParseExpr();
    current_subqueries_ = saved;
    ERQ_RETURN_IF_ERROR(where.status());
    select->where = std::move(*where);
  }
  // Fold desugared inner-join conditions into WHERE.
  if (!join_conjuncts.empty()) {
    std::vector<ExprPtr> conjuncts = std::move(join_conjuncts);
    if (select->where) conjuncts.push_back(select->where);
    select->where = Expr::MakeAnd(std::move(conjuncts));
  }

  if (MatchKeyword("GROUP")) {
    ERQ_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      ERQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      select->group_by.push_back(std::move(e));
    } while (Match(TokenType::kComma));
  }
  if (MatchKeyword("HAVING")) {
    ERQ_ASSIGN_OR_RETURN(select->having, ParseExpr());
  }
  if (MatchKeyword("ORDER")) {
    ERQ_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderItem item;
      ERQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        MatchKeyword("ASC");
      }
      select->order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }
  return select;
}

// ---- Expressions ----

StatusOr<ExprPtr> Parser::ParseExpr() {
  ERQ_ASSIGN_OR_RETURN(ExprPtr first, ParseAnd());
  if (!CheckKeyword("OR")) return first;
  std::vector<ExprPtr> children = {std::move(first)};
  while (MatchKeyword("OR")) {
    ERQ_ASSIGN_OR_RETURN(ExprPtr next, ParseAnd());
    children.push_back(std::move(next));
  }
  return Expr::MakeOr(std::move(children));
}

StatusOr<ExprPtr> Parser::ParseAnd() {
  ERQ_ASSIGN_OR_RETURN(ExprPtr first, ParseNot());
  if (!CheckKeyword("AND")) return first;
  std::vector<ExprPtr> children = {std::move(first)};
  while (MatchKeyword("AND")) {
    ERQ_ASSIGN_OR_RETURN(ExprPtr next, ParseNot());
    children.push_back(std::move(next));
  }
  return Expr::MakeAnd(std::move(children));
}

StatusOr<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    ERQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
    return Expr::MakeNot(std::move(inner));
  }
  return ParsePredicate();
}

StatusOr<ExprPtr> Parser::ParsePredicate() {
  ERQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

  // IS [NOT] NULL
  if (MatchKeyword("IS")) {
    bool negated = MatchKeyword("NOT");
    ERQ_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    return Expr::MakeIsNull(std::move(lhs), negated);
  }

  // [NOT] BETWEEN / IN / LIKE
  bool negated = false;
  if (CheckKeyword("NOT") &&
      (Peek(1).IsKeyword("BETWEEN") || Peek(1).IsKeyword("IN") ||
       Peek(1).IsKeyword("LIKE"))) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("LIKE")) {
    if (Peek().type != TokenType::kStringLiteral) {
      return ErrorHere("expected pattern string after LIKE");
    }
    ExprPtr pattern = Expr::MakeLiteral(Value::String(Advance().text));
    return Expr::MakeLike(std::move(lhs), std::move(pattern), negated);
  }
  if (MatchKeyword("BETWEEN")) {
    ERQ_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    ERQ_RETURN_IF_ERROR(ExpectKeyword("AND"));
    ERQ_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    return Expr::MakeBetween(std::move(lhs), std::move(lo), std::move(hi),
                             negated);
  }
  if (MatchKeyword("IN")) {
    ERQ_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    if (CheckKeyword("SELECT") || Peek().type == TokenType::kLParen) {
      // IN (SELECT ...): rewritten to a semi-join by the planner.
      if (negated) {
        return ErrorHere("NOT IN (subquery) is not supported");
      }
      if (current_subqueries_ == nullptr) {
        return ErrorHere(
            "IN (subquery) is only supported in a WHERE clause");
      }
      ERQ_ASSIGN_OR_RETURN(std::unique_ptr<Statement> sub, ParseQuery());
      ERQ_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      InSubquery entry;
      entry.operand = std::move(lhs);
      entry.query = std::move(sub);
      size_t index = current_subqueries_->size();
      current_subqueries_->push_back(std::move(entry));
      return Expr::MakeColumnRef("", SubqueryMarkerName(index));
    }
    std::vector<ExprPtr> list;
    do {
      ERQ_ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
      list.push_back(std::move(item));
    } while (Match(TokenType::kComma));
    ERQ_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return Expr::MakeInList(std::move(lhs), std::move(list), negated);
  }
  if (negated) return ErrorHere("expected BETWEEN, IN, or LIKE after NOT");

  // Comparison.
  CompareOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = CompareOp::kEq;
      break;
    case TokenType::kNe:
      op = CompareOp::kNe;
      break;
    case TokenType::kLt:
      op = CompareOp::kLt;
      break;
    case TokenType::kLe:
      op = CompareOp::kLe;
      break;
    case TokenType::kGt:
      op = CompareOp::kGt;
      break;
    case TokenType::kGe:
      op = CompareOp::kGe;
      break;
    default:
      return lhs;  // bare scalar (boolean context resolves later)
  }
  Advance();
  ERQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
  return Expr::MakeCompare(op, std::move(lhs), std::move(rhs));
}

StatusOr<ExprPtr> Parser::ParseAdditive() {
  ERQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTerm());
  while (Peek().type == TokenType::kPlus || Peek().type == TokenType::kMinus) {
    ArithOp op = Peek().type == TokenType::kPlus ? ArithOp::kAdd : ArithOp::kSub;
    Advance();
    ERQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
    lhs = Expr::MakeArith(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExprPtr> Parser::ParseTerm() {
  ERQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseFactor());
  while (Peek().type == TokenType::kStar || Peek().type == TokenType::kSlash) {
    ArithOp op = Peek().type == TokenType::kStar ? ArithOp::kMul : ArithOp::kDiv;
    Advance();
    ERQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseFactor());
    lhs = Expr::MakeArith(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExprPtr> Parser::ParseFactor() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kIntLiteral: {
      int64_t v = tok.int_value;
      Advance();
      return Expr::MakeLiteral(Value::Int(v));
    }
    case TokenType::kDoubleLiteral: {
      double v = tok.double_value;
      Advance();
      return Expr::MakeLiteral(Value::Double(v));
    }
    case TokenType::kStringLiteral: {
      std::string s = tok.text;
      Advance();
      return Expr::MakeLiteral(Value::String(std::move(s)));
    }
    case TokenType::kMinus: {
      Advance();
      ERQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseFactor());
      if (inner->kind() == Expr::Kind::kLiteral) {
        const Value& v = inner->value();
        if (v.type() == DataType::kInt64) {
          return Expr::MakeLiteral(Value::Int(-v.AsInt()));
        }
        if (v.type() == DataType::kDouble) {
          return Expr::MakeLiteral(Value::Double(-v.AsDouble()));
        }
      }
      return Expr::MakeArith(ArithOp::kSub,
                             Expr::MakeLiteral(Value::Int(0)),
                             std::move(inner));
    }
    case TokenType::kPlus:
      Advance();
      return ParseFactor();
    case TokenType::kLParen: {
      Advance();
      ERQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      ERQ_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    case TokenType::kKeyword: {
      if (tok.IsKeyword("DATE")) {
        Advance();
        if (Peek().type != TokenType::kStringLiteral) {
          return ErrorHere("expected date string after DATE");
        }
        ERQ_ASSIGN_OR_RETURN(int32_t days, DateFromString(Peek().text));
        Advance();
        return Expr::MakeLiteral(Value::Date(days));
      }
      if (tok.IsKeyword("NULL")) {
        Advance();
        return Expr::MakeLiteral(Value::Null());
      }
      return ErrorHere("unexpected keyword in expression");
    }
    case TokenType::kIdentifier: {
      std::string first = tok.text;
      Advance();
      if (Match(TokenType::kDot)) {
        if (Peek().type != TokenType::kIdentifier) {
          return ErrorHere("expected column name after '.'");
        }
        std::string column = Advance().text;
        return Expr::MakeColumnRef(std::move(first), std::move(column));
      }
      return Expr::MakeColumnRef("", std::move(first));
    }
    default:
      return ErrorHere("expected expression");
  }
}

}  // namespace erq
