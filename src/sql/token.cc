#include "sql/token.h"

#include <array>

#include "common/string_util.h"

namespace erq {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

std::string Token::ToString() const {
  switch (type) {
    case TokenType::kEof:
      return "<eof>";
    case TokenType::kIdentifier:
      return "identifier '" + text + "'";
    case TokenType::kKeyword:
      return "keyword " + text;
    case TokenType::kIntLiteral:
      return "integer " + std::to_string(int_value);
    case TokenType::kDoubleLiteral:
      return "double " + std::to_string(double_value);
    case TokenType::kStringLiteral:
      return "string '" + text + "'";
    default:
      return "'" + text + "'";
  }
}

bool IsReservedKeyword(const std::string& word) {
  static const std::array<const char*, 31> kKeywords = {
      "SELECT", "FROM",  "WHERE",  "AND",   "OR",     "NOT",   "BETWEEN",
      "IN",     "AS",    "JOIN",   "INNER", "LEFT",   "RIGHT", "FULL",
      "OUTER",  "ON",    "ORDER",  "BY",    "GROUP",  "HAVING", "DISTINCT",
      "UNION",  "EXCEPT", "ALL",   "ASC",   "DESC",   "DATE",  "IS",
      "NULL",   "LIKE",  "CROSS",
  };
  std::string upper = ToUpper(word);
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

}  // namespace erq
