#pragma once

#include <string>

namespace erq {

enum class TokenType {
  kEof = 0,
  kIdentifier,   // table / column names
  kKeyword,      // normalized to upper case in `text`
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // text holds the unquoted content
  // punctuation / operators
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,    // =
  kNe,    // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;     // raw text (keywords upper-cased, strings unquoted)
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;  // byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const;
  std::string ToString() const;
};

/// True if `word` (case-insensitive) is a reserved SQL keyword.
bool IsReservedKeyword(const std::string& word);

}  // namespace erq

