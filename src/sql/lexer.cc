#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace erq {

char Lexer::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  return i < input_.size() ? input_[i] : '\0';
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
    } else if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') ++pos_;
    } else {
      break;
    }
  }
}

StatusOr<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    ERQ_ASSIGN_OR_RETURN(Token tok, Next());
    bool eof = tok.type == TokenType::kEof;
    tokens.push_back(std::move(tok));
    if (eof) break;
  }
  return tokens;
}

StatusOr<Token> Lexer::Next() {
  SkipWhitespaceAndComments();
  Token tok;
  tok.position = pos_;
  if (AtEnd()) {
    tok.type = TokenType::kEof;
    return tok;
  }
  char c = Peek();

  // Numbers: integer or double; a leading '.' digit form (.5) is supported.
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    size_t start = pos_;
    bool has_dot = false, has_exp = false;
    while (!AtEnd()) {
      char d = Peek();
      if (std::isdigit(static_cast<unsigned char>(d))) {
        ++pos_;
      } else if (d == '.' && !has_dot && !has_exp) {
        has_dot = true;
        ++pos_;
      } else if ((d == 'e' || d == 'E') && !has_exp &&
                 (std::isdigit(static_cast<unsigned char>(Peek(1))) ||
                  ((Peek(1) == '+' || Peek(1) == '-') &&
                   std::isdigit(static_cast<unsigned char>(Peek(2)))))) {
        has_exp = true;
        ++pos_;
        if (Peek() == '+' || Peek() == '-') ++pos_;
      } else {
        break;
      }
    }
    std::string text = input_.substr(start, pos_ - start);
    tok.text = text;
    if (has_dot || has_exp) {
      tok.type = TokenType::kDoubleLiteral;
      tok.double_value = std::strtod(text.c_str(), nullptr);
    } else {
      tok.type = TokenType::kIntLiteral;
      errno = 0;
      tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        return Status::ParseError("integer literal out of range: " + text);
      }
    }
    return tok;
  }

  // Identifiers / keywords.
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '#')) {
      ++pos_;
    }
    std::string word = input_.substr(start, pos_ - start);
    if (IsReservedKeyword(word)) {
      tok.type = TokenType::kKeyword;
      tok.text = ToUpper(word);
    } else {
      tok.type = TokenType::kIdentifier;
      tok.text = word;
    }
    return tok;
  }

  // String literal.
  if (c == '\'') {
    ++pos_;
    std::string content;
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.position));
      }
      char d = Peek();
      if (d == '\'') {
        if (Peek(1) == '\'') {  // escaped quote
          content += '\'';
          pos_ += 2;
        } else {
          ++pos_;
          break;
        }
      } else {
        content += d;
        ++pos_;
      }
    }
    tok.type = TokenType::kStringLiteral;
    tok.text = std::move(content);
    return tok;
  }

  // Operators / punctuation.
  auto single = [&](TokenType t) {
    tok.type = t;
    tok.text = std::string(1, c);
    ++pos_;
    return tok;
  };
  switch (c) {
    case ',':
      return single(TokenType::kComma);
    case '.':
      return single(TokenType::kDot);
    case '(':
      return single(TokenType::kLParen);
    case ')':
      return single(TokenType::kRParen);
    case '*':
      return single(TokenType::kStar);
    case '+':
      return single(TokenType::kPlus);
    case '-':
      return single(TokenType::kMinus);
    case '/':
      return single(TokenType::kSlash);
    case '=':
      return single(TokenType::kEq);
    case '<':
      if (Peek(1) == '=') {
        tok.type = TokenType::kLe;
        tok.text = "<=";
        pos_ += 2;
        return tok;
      }
      if (Peek(1) == '>') {
        tok.type = TokenType::kNe;
        tok.text = "<>";
        pos_ += 2;
        return tok;
      }
      return single(TokenType::kLt);
    case '>':
      if (Peek(1) == '=') {
        tok.type = TokenType::kGe;
        tok.text = ">=";
        pos_ += 2;
        return tok;
      }
      return single(TokenType::kGt);
    case '!':
      if (Peek(1) == '=') {
        tok.type = TokenType::kNe;
        tok.text = "!=";
        pos_ += 2;
        return tok;
      }
      return Status::ParseError("unexpected character '!' at offset " +
                                std::to_string(pos_));
    case ';':
      // Statement terminator: treat as end of input.
      pos_ = input_.size();
      tok.type = TokenType::kEof;
      return tok;
    default:
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(pos_));
  }
}

}  // namespace erq
