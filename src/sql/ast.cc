#include "sql/ast.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace erq {

std::string SubqueryMarkerName(size_t index) {
  return "$subq" + std::to_string(index);
}

int ParseSubqueryMarker(const std::string& column_name) {
  if (!StartsWith(column_name, "$subq")) return -1;
  for (size_t i = 5; i < column_name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(column_name[i]))) return -1;
  }
  if (column_name.size() == 5) return -1;
  return std::atoi(column_name.c_str() + 5);
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

std::string SelectItem::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kStar:
      out = "*";
      break;
    case Kind::kExpr:
      out = expr->ToString();
      break;
    case Kind::kAggregate:
      out = std::string(AggFuncToString(agg)) + "(" +
            (count_star ? "*" : expr->ToString()) + ")";
      break;
  }
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

bool SelectStatement::HasAggregates() const {
  for (const SelectItem& item : items) {
    if (item.kind == SelectItem::Kind::kAggregate) return true;
  }
  return false;
}

std::string SelectStatement::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].ToString();
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].ToString();
  }
  for (const OuterJoin& j : outer_joins) {
    out += " LEFT OUTER JOIN " + j.right.ToString() + " ON " +
           j.condition->ToString();
  }
  if (where) out += " WHERE " + where->ToString();
  for (size_t i = 0; i < in_subqueries.size(); ++i) {
    out += " /* " + SubqueryMarkerName(i) + " := " +
           in_subqueries[i].operand->ToString() + " IN (" +
           in_subqueries[i].query->ToString() + ") */";
  }
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (!order_by[i].ascending) out += " DESC";
    }
  }
  return out;
}

std::string Statement::ToString() const {
  switch (op) {
    case Op::kSelect:
      return select->ToString();
    case Op::kUnion:
      return "(" + left->ToString() + (all ? ") UNION ALL (" : ") UNION (") +
             right->ToString() + ")";
    case Op::kExcept:
      return "(" + left->ToString() + (all ? ") EXCEPT ALL (" : ") EXCEPT (") +
             right->ToString() + ")";
  }
  return "?";
}

}  // namespace erq
