#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace erq {

/// Recursive-descent parser for the SQL dialect the engine executes:
///
///   query        := block ((UNION | EXCEPT) [ALL] block)*
///   block        := select | '(' query ')'
///   select       := SELECT [DISTINCT] select_list FROM from_clause
///                   [WHERE expr] [GROUP BY expr_list] [HAVING expr]
///                   [ORDER BY order_list]
///   from_clause  := from_item (',' from_item)*
///   from_item    := table_ref (join_suffix)*
///   join_suffix  := [INNER] JOIN table_ref ON expr
///                 | CROSS JOIN table_ref
///                 | LEFT [OUTER] JOIN table_ref ON expr
///   table_ref    := ident [[AS] ident]
///
/// Inner/cross joins are desugared into the FROM list plus WHERE conjuncts
/// (the logical form §2 works with); LEFT OUTER JOIN is kept structured.
/// Expressions support OR/AND/NOT, comparisons, BETWEEN, [NOT] IN (list),
/// IS [NOT] NULL, + - * /, column refs, and INT/DOUBLE/STRING/DATE/NULL
/// literals.
class Parser {
 public:
  /// Parses one statement (optionally ';'-terminated).
  static StatusOr<std::unique_ptr<Statement>> Parse(const std::string& sql);

  /// Parses a standalone boolean expression (used by tests and tools).
  static StatusOr<ExprPtr> ParseExpression(const std::string& text);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool MatchKeyword(const char* kw);
  bool CheckKeyword(const char* kw) const;
  Status ExpectKeyword(const char* kw);
  bool Match(TokenType t);
  Status Expect(TokenType t, const char* what);
  Status ErrorHere(const std::string& message) const;

  StatusOr<std::unique_ptr<Statement>> ParseQuery();
  StatusOr<std::unique_ptr<Statement>> ParseBlock();
  StatusOr<std::unique_ptr<SelectStatement>> ParseSelect();
  StatusOr<TableRef> ParseTableRef();
  StatusOr<SelectItem> ParseSelectItem();

  StatusOr<ExprPtr> ParseExpr();        // OR level
  StatusOr<ExprPtr> ParseAnd();
  StatusOr<ExprPtr> ParseNot();
  StatusOr<ExprPtr> ParsePredicate();
  StatusOr<ExprPtr> ParseAdditive();
  StatusOr<ExprPtr> ParseTerm();
  StatusOr<ExprPtr> ParseFactor();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  /// Sink for IN (SELECT ...) predicates while parsing a WHERE clause;
  /// null elsewhere (subqueries are rejected outside WHERE).
  std::vector<InSubquery>* current_subqueries_ = nullptr;
};

}  // namespace erq

