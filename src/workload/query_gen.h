#pragma once

#include <random>
#include <string>
#include <vector>

#include "workload/tpcr.h"

namespace erq {

/// Parameters of the paper's Query Q1 (§3.1):
///   select * from orders o, lineitem l
///   where o.orderkey = l.orderkey
///     and (o.orderdate = d1 or ... or o.orderdate = de)
///     and (l.partkey   = p1 or ... or l.partkey   = pf);
/// Combination factor F = e * f.
struct Q1Spec {
  std::vector<int32_t> dates;   // e values (days since epoch)
  std::vector<int64_t> parts;   // f values
  size_t CombinationFactor() const { return dates.size() * parts.size(); }
  std::string ToSql() const;
};

/// Parameters of Query Q2 (adds customer and a nationkey disjunction);
/// F = e * f * g.
struct Q2Spec {
  std::vector<int32_t> dates;
  std::vector<int64_t> parts;
  std::vector<int64_t> nations;
  size_t CombinationFactor() const {
    return dates.size() * parts.size() * nations.size();
  }
  std::string ToSql() const;
};

/// Generates paper-faithful Q1/Q2 instances. Empty instances satisfy the
/// paper's property that the minimal zero result is the query itself:
/// every individual selection value occurs in its relation, and for Q1
/// every (date, part) combination is absent from the join (for Q2 every
/// (date, part, nation) triple).
class QueryGenerator {
 public:
  QueryGenerator(const TpcrInstance* instance, uint64_t seed)
      : instance_(instance), rng_(seed) {}

  /// `want_empty` controls whether the result set must be empty or must
  /// contain at least one row.
  Q1Spec GenerateQ1(size_t e, size_t f, bool want_empty);
  Q2Spec GenerateQ2(size_t e, size_t f, size_t g, bool want_empty);

 private:
  int32_t RandomDate();
  int64_t RandomPart();
  int64_t RandomNation();

  const TpcrInstance* instance_;
  std::mt19937_64 rng_;
};

}  // namespace erq

