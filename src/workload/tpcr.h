#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/statusor.h"
#include "catalog/catalog.h"
#include "stats/analyzer.h"

namespace erq {

/// TPC-R-style test database (§3.1, Table 1):
///   customer (custkey, nationkey, name, acctbal)
///   orders   (orderkey, custkey, orderdate, totalprice)
///   lineitem (orderkey, partkey, quantity, extendedprice)
/// The paper's cardinalities are 0.15s M / 1.5s M / 6s M rows; we preserve
/// the 1 : 10 : 40 ratios and the match ratios (each customer matches ~10
/// orders on custkey, each order 4 lineitems on orderkey) at a configurable
/// rows-per-scale-unit so benches run in seconds (documented substitution).
struct TpcrConfig {
  double scale = 1.0;              // the paper's s
  size_t customers_per_unit = 1500;  // paper: 150,000 (scaled down 100x)
  int num_nations = 25;
  int64_t num_parts = 2000;        // partkey domain [0, num_parts)
  int date_start_year = 1992;      // orderdate domain start
  int num_days = 2406;             // ~1992-01-01 .. 1998-08-02
  uint64_t seed = 42;
  /// Horizontal partitions per table (range on customer.custkey,
  /// orders.orderkey, lineitem.orderkey via equi-width bounds computed
  /// after load). 1 (or 0) leaves the tables unpartitioned — the
  /// ablation baseline for pruning experiments.
  size_t partitions = 1;
};

/// Handles plus co-occurrence indexes used by the query generators to
/// construct queries that are guaranteed empty (or non-empty) while every
/// individual selection still matches rows (the paper's "minimal zero
/// result is Q itself" property).
struct TpcrInstance {
  TpcrConfig config;
  Table* customer = nullptr;
  Table* orders = nullptr;
  Table* lineitem = nullptr;

  int32_t first_date = 0;  // days-since-epoch of date_start_year-01-01

  /// Dates (days) on which at least one order exists.
  std::vector<int32_t> present_dates;
  /// Partkeys that appear in lineitem.
  std::vector<int64_t> present_parts;
  /// Nations that appear in customer.
  std::vector<int64_t> present_nations;

  /// (date, part) pairs that co-occur: some lineitem of part p belongs to
  /// an order placed on date d. Key: date * kPairStride + part.
  std::unordered_set<int64_t> date_part_pairs;
  /// (date, part, nation) triples that co-occur.
  std::unordered_set<int64_t> date_part_nation_triples;

  static constexpr int64_t kPairStride = int64_t{1} << 21;

  int64_t PairKey(int32_t date, int64_t part) const {
    return (date - first_date) * kPairStride + part;
  }
  int64_t TripleKey(int32_t date, int64_t part, int64_t nation) const {
    return ((date - first_date) * kPairStride + part) * 32 + nation;
  }
  bool PairPresent(int32_t date, int64_t part) const {
    return date_part_pairs.count(PairKey(date, part)) > 0;
  }
  bool TriplePresent(int32_t date, int64_t part, int64_t nation) const {
    return date_part_nation_triples.count(TripleKey(date, part, nation)) > 0;
  }
};

/// Creates and populates the three tables in `catalog`.
StatusOr<TpcrInstance> BuildTpcr(Catalog* catalog, const TpcrConfig& config);

/// Builds an index on each selection/join attribute, as in §3.1.
Status BuildTpcrIndexes(Catalog* catalog);

/// Prints/returns the Table 1 dataset summary row for the instance.
struct DatasetSummary {
  size_t customer_rows, orders_rows, lineitem_rows;
  size_t customer_bytes, orders_bytes, lineitem_bytes;
};
DatasetSummary SummarizeDataset(const TpcrInstance& instance);

}  // namespace erq

