#include "workload/trace.h"

#include <algorithm>
#include <random>
#include <set>

namespace erq {

namespace {

/// Samples from a Zipf(s) distribution over [0, n) via inverse CDF.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) {
    cdf_.reserve(n);
    double acc = 0.0;
    for (size_t i = 1; i <= n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i), s);
      cdf_.push_back(acc);
    }
    for (double& v : cdf_) v /= acc;
  }

  size_t Sample(std::mt19937_64& rng) const {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

std::vector<TraceQuery> GenerateCrmTrace(const TpcrInstance& instance,
                                         const TraceConfig& config) {
  std::mt19937_64 rng(config.seed);
  QueryGenerator gen(&instance, config.seed * 7919 + 1);

  const size_t total_empty = static_cast<size_t>(
      static_cast<double>(config.total_queries) * config.empty_fraction);
  const size_t distinct_empty = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(total_empty) *
                             config.distinct_empty_fraction));

  std::bernoulli_distribution use_q2(config.q2_fraction);

  // Distinct empty templates (hot spots users keep probing). A configurable
  // fraction uses the three-relation Q2 shape.
  std::vector<std::string> empty_templates;
  empty_templates.reserve(distinct_empty);
  for (size_t i = 0; i < distinct_empty; ++i) {
    if (use_q2(rng)) {
      empty_templates.push_back(
          gen.GenerateQ2(config.e, config.f, 1, /*want_empty=*/true).ToSql());
    } else {
      empty_templates.push_back(
          gen.GenerateQ1(config.e, config.f, /*want_empty=*/true).ToSql());
    }
  }

  std::vector<TraceQuery> trace;
  trace.reserve(config.total_queries);

  // Every template appears at least once; the remaining empty executions
  // are Zipf-repeated over the templates.
  for (size_t i = 0; i < distinct_empty && trace.size() < total_empty; ++i) {
    trace.push_back(TraceQuery{empty_templates[i], true,
                               static_cast<int>(i)});
  }
  ZipfSampler zipf(distinct_empty, config.zipf_s);
  while (trace.size() < total_empty) {
    size_t id = zipf.Sample(rng);
    trace.push_back(TraceQuery{empty_templates[id], true,
                               static_cast<int>(id)});
  }

  // Non-empty remainder.
  while (trace.size() < config.total_queries) {
    std::string sql =
        use_q2(rng)
            ? gen.GenerateQ2(config.e, config.f, 1, /*want_empty=*/false)
                  .ToSql()
            : gen.GenerateQ1(config.e, config.f, /*want_empty=*/false)
                  .ToSql();
    trace.push_back(TraceQuery{std::move(sql), false, -1});
  }

  std::shuffle(trace.begin(), trace.end(), rng);
  return trace;
}

TraceStats ComputeTraceStats(const std::vector<TraceQuery>& trace) {
  TraceStats stats;
  stats.total = trace.size();
  std::set<int> seen_templates;
  std::set<std::string> seen_sql;
  for (const TraceQuery& q : trace) {
    if (!q.expect_empty) continue;
    ++stats.empty;
    if (!seen_sql.insert(q.sql).second) {
      ++stats.repeated_empty;
    }
    seen_templates.insert(q.template_id);
  }
  stats.distinct_empty = seen_templates.size();
  return stats;
}

}  // namespace erq
