#include "workload/query_gen.h"

#include "types/date.h"

namespace erq {

namespace {

std::string DateDisjunction(const std::string& col,
                            const std::vector<int32_t>& dates) {
  std::string out = "(";
  for (size_t i = 0; i < dates.size(); ++i) {
    if (i > 0) out += " or ";
    out += col + " = DATE '" + DateToString(dates[i]) + "'";
  }
  return out + ")";
}

std::string IntDisjunction(const std::string& col,
                           const std::vector<int64_t>& values) {
  std::string out = "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += " or ";
    out += col + " = " + std::to_string(values[i]);
  }
  return out + ")";
}

}  // namespace

std::string Q1Spec::ToSql() const {
  return "select * from orders o, lineitem l where o.orderkey = l.orderkey "
         "and " +
         DateDisjunction("o.orderdate", dates) + " and " +
         IntDisjunction("l.partkey", parts);
}

std::string Q2Spec::ToSql() const {
  return "select * from orders o, lineitem l, customer c "
         "where o.orderkey = l.orderkey and o.custkey = c.custkey and " +
         DateDisjunction("o.orderdate", dates) + " and " +
         IntDisjunction("l.partkey", parts) + " and " +
         IntDisjunction("c.nationkey", nations);
}

int32_t QueryGenerator::RandomDate() {
  std::uniform_int_distribution<size_t> d(0,
                                          instance_->present_dates.size() - 1);
  return instance_->present_dates[d(rng_)];
}

int64_t QueryGenerator::RandomPart() {
  std::uniform_int_distribution<size_t> d(0,
                                          instance_->present_parts.size() - 1);
  return instance_->present_parts[d(rng_)];
}

int64_t QueryGenerator::RandomNation() {
  std::uniform_int_distribution<size_t> d(
      0, instance_->present_nations.size() - 1);
  return instance_->present_nations[d(rng_)];
}

Q1Spec QueryGenerator::GenerateQ1(size_t e, size_t f, bool want_empty) {
  // Rejection-sample value sets until the emptiness requirement holds.
  // By construction the tables contain every sampled value, so the
  // "minimal zero result is the whole query" property holds for empty
  // instances.
  for (int attempt = 0; attempt < 10000; ++attempt) {
    Q1Spec spec;
    for (size_t i = 0; i < e; ++i) spec.dates.push_back(RandomDate());
    for (size_t j = 0; j < f; ++j) spec.parts.push_back(RandomPart());
    bool any_pair = false;
    for (int32_t d : spec.dates) {
      for (int64_t p : spec.parts) {
        if (instance_->PairPresent(d, p)) {
          any_pair = true;
          break;
        }
      }
      if (any_pair) break;
    }
    if (want_empty && !any_pair) return spec;
    if (!want_empty && any_pair) return spec;
    if (!want_empty) {
      // Force a present pair: take it from an existing lineitem row.
      // Order keys are assigned sequentially, so lineitem row j belongs to
      // the order at row (orderkey) of `orders`.
      std::uniform_int_distribution<size_t> d(
          0, instance_->lineitem->num_rows() - 1);
      const Row& li = instance_->lineitem->row(d(rng_));
      int64_t orderkey = li[0].AsInt();
      spec.parts.back() = li[1].AsInt();
      spec.dates.back() =
          instance_->orders->row(static_cast<size_t>(orderkey))[2].AsDate();
      return spec;
    }
  }
  // Extremely dense data: fall back to a value outside every domain (the
  // query is then empty, though not "minimal" in the paper's sense).
  Q1Spec spec;
  for (size_t i = 0; i < e; ++i) spec.dates.push_back(RandomDate());
  for (size_t j = 0; j < f; ++j) {
    spec.parts.push_back(instance_->config.num_parts + 1 +
                         static_cast<int64_t>(j));
  }
  return spec;
}

Q2Spec QueryGenerator::GenerateQ2(size_t e, size_t f, size_t g,
                                  bool want_empty) {
  for (int attempt = 0; attempt < 10000; ++attempt) {
    Q2Spec spec;
    for (size_t i = 0; i < e; ++i) spec.dates.push_back(RandomDate());
    for (size_t j = 0; j < f; ++j) spec.parts.push_back(RandomPart());
    for (size_t k = 0; k < g; ++k) spec.nations.push_back(RandomNation());
    bool any_triple = false;
    for (int32_t d : spec.dates) {
      for (int64_t p : spec.parts) {
        for (int64_t n : spec.nations) {
          if (instance_->TriplePresent(d, p, n)) {
            any_triple = true;
            break;
          }
        }
        if (any_triple) break;
      }
      if (any_triple) break;
    }
    if (want_empty && !any_triple) return spec;
    if (!want_empty && any_triple) return spec;
    if (!want_empty) {
      // Force a present triple from an existing lineitem row.
      std::uniform_int_distribution<size_t> d(
          0, instance_->lineitem->num_rows() - 1);
      const Row& li = instance_->lineitem->row(d(rng_));
      int64_t orderkey = li[0].AsInt();
      const Row& order = instance_->orders->row(static_cast<size_t>(orderkey));
      spec.parts.back() = li[1].AsInt();
      spec.dates.back() = order[2].AsDate();
      int64_t custkey = order[1].AsInt();
      spec.nations.back() =
          instance_->customer->row(static_cast<size_t>(custkey))[1].AsInt();
      return spec;
    }
  }
  Q2Spec spec;
  for (size_t i = 0; i < e; ++i) spec.dates.push_back(RandomDate());
  for (size_t j = 0; j < f; ++j) {
    spec.parts.push_back(instance_->config.num_parts + 1 +
                         static_cast<int64_t>(j));
  }
  for (size_t k = 0; k < g; ++k) spec.nations.push_back(RandomNation());
  return spec;
}

}  // namespace erq
