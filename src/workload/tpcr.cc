#include "workload/tpcr.h"

#include <algorithm>
#include <random>

#include "types/date.h"

namespace erq {

StatusOr<TpcrInstance> BuildTpcr(Catalog* catalog, const TpcrConfig& config) {
  TpcrInstance inst;
  inst.config = config;
  ERQ_ASSIGN_OR_RETURN(inst.first_date,
                       DateFromYmd(config.date_start_year, 1, 1));

  ERQ_ASSIGN_OR_RETURN(
      inst.customer,
      catalog->CreateTable("customer",
                           Schema({{"custkey", DataType::kInt64},
                                   {"nationkey", DataType::kInt64},
                                   {"name", DataType::kString},
                                   {"acctbal", DataType::kDouble}})));
  ERQ_ASSIGN_OR_RETURN(
      inst.orders,
      catalog->CreateTable("orders",
                           Schema({{"orderkey", DataType::kInt64},
                                   {"custkey", DataType::kInt64},
                                   {"orderdate", DataType::kDate},
                                   {"totalprice", DataType::kDouble}})));
  ERQ_ASSIGN_OR_RETURN(
      inst.lineitem,
      catalog->CreateTable("lineitem",
                           Schema({{"orderkey", DataType::kInt64},
                                   {"partkey", DataType::kInt64},
                                   {"quantity", DataType::kInt64},
                                   {"extendedprice", DataType::kDouble}})));

  std::mt19937_64 rng(config.seed);
  std::uniform_int_distribution<int> nation_dist(0, config.num_nations - 1);
  std::uniform_int_distribution<int> date_dist(0, config.num_days - 1);
  std::uniform_int_distribution<int64_t> part_dist(0, config.num_parts - 1);
  std::uniform_int_distribution<int> quantity_dist(1, 50);
  std::uniform_real_distribution<double> price_dist(1.0, 10000.0);

  const size_t num_customers = static_cast<size_t>(
      static_cast<double>(config.customers_per_unit) * config.scale);
  const size_t orders_per_customer = 10;  // paper's match ratio
  const size_t lineitems_per_order = 4;   // paper's match ratio

  std::unordered_set<int32_t> dates_seen;
  std::unordered_set<int64_t> parts_seen;
  std::unordered_set<int64_t> nations_seen;

  inst.customer->Reserve(num_customers);
  inst.orders->Reserve(num_customers * orders_per_customer);
  inst.lineitem->Reserve(num_customers * orders_per_customer *
                         lineitems_per_order);

  std::vector<int64_t> customer_nation(num_customers);
  for (size_t c = 0; c < num_customers; ++c) {
    int64_t nation = nation_dist(rng);
    customer_nation[c] = nation;
    nations_seen.insert(nation);
    inst.customer->AppendUnchecked(
        Row{Value::Int(static_cast<int64_t>(c)), Value::Int(nation),
            Value::String("Customer#" + std::to_string(c)),
            Value::Double(price_dist(rng))});
  }

  int64_t orderkey = 0;
  for (size_t c = 0; c < num_customers; ++c) {
    for (size_t o = 0; o < orders_per_customer; ++o) {
      int32_t date = inst.first_date + date_dist(rng);
      dates_seen.insert(date);
      inst.orders->AppendUnchecked(Row{
          Value::Int(orderkey), Value::Int(static_cast<int64_t>(c)),
          Value::Date(date), Value::Double(price_dist(rng))});
      for (size_t l = 0; l < lineitems_per_order; ++l) {
        int64_t part = part_dist(rng);
        parts_seen.insert(part);
        inst.lineitem->AppendUnchecked(
            Row{Value::Int(orderkey), Value::Int(part),
                Value::Int(quantity_dist(rng)),
                Value::Double(price_dist(rng))});
        inst.date_part_pairs.insert(inst.PairKey(date, part));
        inst.date_part_nation_triples.insert(
            inst.TripleKey(date, part, customer_nation[c]));
      }
      ++orderkey;
    }
  }

  inst.present_dates.assign(dates_seen.begin(), dates_seen.end());
  std::sort(inst.present_dates.begin(), inst.present_dates.end());
  inst.present_parts.assign(parts_seen.begin(), parts_seen.end());
  std::sort(inst.present_parts.begin(), inst.present_parts.end());
  inst.present_nations.assign(nations_seen.begin(), nations_seen.end());
  std::sort(inst.present_nations.begin(), inst.present_nations.end());

  if (config.partitions > 1) {
    // Range-partition each table on its primary access key, with bounds
    // computed from the loaded data so every partition holds rows. Done
    // after load: one zone-map rebuild instead of per-row maintenance.
    const std::vector<std::pair<Table*, const char*>> keys{
        {inst.customer, "custkey"},
        {inst.orders, "orderkey"},
        {inst.lineitem, "orderkey"},
    };
    for (const auto& [table, key] : keys) {
      ERQ_ASSIGN_OR_RETURN(size_t key_index, table->schema().IndexOf(key));
      PartitionScheme scheme;
      scheme.kind = PartitionScheme::Kind::kRange;
      scheme.key_column = key;
      scheme.range_bounds =
          EquiWidthBounds(table->rows(), key_index, config.partitions);
      ERQ_RETURN_IF_ERROR(
          catalog->SetPartitioning(table->name(), std::move(scheme)));
    }
  }
  return inst;
}

Status BuildTpcrIndexes(Catalog* catalog) {
  // §3.1: "We built an index on each selection or join attribute."
  for (const auto& [table, column] :
       std::vector<std::pair<const char*, const char*>>{
           {"customer", "custkey"},
           {"customer", "nationkey"},
           {"orders", "orderkey"},
           {"orders", "custkey"},
           {"orders", "orderdate"},
           {"lineitem", "orderkey"},
           {"lineitem", "partkey"},
       }) {
    ERQ_ASSIGN_OR_RETURN(SortedIndex * idx, catalog->CreateIndex(table, column));
    (void)idx;
  }
  return Status::OK();
}

DatasetSummary SummarizeDataset(const TpcrInstance& instance) {
  DatasetSummary out;
  out.customer_rows = instance.customer->num_rows();
  out.orders_rows = instance.orders->num_rows();
  out.lineitem_rows = instance.lineitem->num_rows();
  out.customer_bytes = instance.customer->EstimatedBytes();
  out.orders_bytes = instance.orders->EstimatedBytes();
  out.lineitem_bytes = instance.lineitem->EstimatedBytes();
  return out;
}

}  // namespace erq
