#pragma once

#include <string>
#include <vector>

#include "workload/query_gen.h"

namespace erq {

/// Synthetic stand-in for the proprietary IBM CRM query trace the paper's
/// introduction reports on: 18,793 queries of which 18.07% (3,396) are
/// empty-result, with only 1,287 distinct empty queries (2,109 repeats —
/// at least 11% of all executions avoidable by perfect reuse). The
/// generator reproduces exactly these aggregate statistics at a
/// configurable overall size.
struct TraceConfig {
  size_t total_queries = 1879;          // paper: 18,793 (scaled 10x down)
  double empty_fraction = 0.1807;       // paper: 18.07%
  double distinct_empty_fraction = 0.379;  // paper: 1287/3396
  /// Zipf skew for which distinct empty query a repeat draws (hot spots).
  double zipf_s = 1.0;
  /// Disjunction sizes of generated Q1 instances.
  size_t e = 2, f = 1;
  /// Fraction of generated queries that use the three-relation Q2 template
  /// (with g = 1 nation disjunct) instead of Q1.
  double q2_fraction = 0.0;
  uint64_t seed = 7;
};

struct TraceQuery {
  std::string sql;
  bool expect_empty = false;
  int template_id = -1;  // distinct-empty-query id; -1 for non-empty
};

/// Statistics of a generated trace (for verifying the paper's ratios).
struct TraceStats {
  size_t total = 0;
  size_t empty = 0;
  size_t distinct_empty = 0;
  size_t repeated_empty = 0;  // empty executions that repeat a prior one
};

std::vector<TraceQuery> GenerateCrmTrace(const TpcrInstance& instance,
                                         const TraceConfig& config);

TraceStats ComputeTraceStats(const std::vector<TraceQuery>& trace);

}  // namespace erq

