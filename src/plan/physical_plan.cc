#include "plan/physical_plan.h"

#include <cstdio>

namespace erq {

const char* PhysOpKindToString(PhysOpKind kind) {
  switch (kind) {
    case PhysOpKind::kTableScan:
      return "TableScan";
    case PhysOpKind::kIndexScan:
      return "IndexScan";
    case PhysOpKind::kCachedResultScan:
      return "CachedResultScan";
    case PhysOpKind::kFilter:
      return "Filter";
    case PhysOpKind::kProject:
      return "Project";
    case PhysOpKind::kNestedLoopsJoin:
      return "NestedLoopsJoin";
    case PhysOpKind::kHashJoin:
      return "HashJoin";
    case PhysOpKind::kMergeJoin:
      return "MergeJoin";
    case PhysOpKind::kSemiJoin:
      return "SemiJoin";
    case PhysOpKind::kLeftOuterJoin:
      return "LeftOuterJoin";
    case PhysOpKind::kSort:
      return "Sort";
    case PhysOpKind::kDistinct:
      return "Distinct";
    case PhysOpKind::kAggregate:
      return "Aggregate";
    case PhysOpKind::kUnion:
      return "Union";
    case PhysOpKind::kExcept:
      return "Except";
  }
  return "?";
}

void PhysicalOperator::ResetActuals() {
  actual_rows = -1;
  partitions_scanned = -1;
  partitions_pruned = -1;
  partition_stats.clear();
  for (const PhysOpPtr& c : children) c->ResetActuals();
}

std::string PhysicalOperator::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + PhysOpKindToString(kind);
  switch (kind) {
    case PhysOpKind::kTableScan:
      out += " " + table_name;
      if (alias != table_name) out += " AS " + alias;
      if (has_scan_condition && scan_condition.size() > 0) {
        out += " zone [" + scan_condition.ToString() + "]";
      }
      if (partitions_scanned >= 0) {
        out += " partitions(scanned=" +
               std::to_string(static_cast<long long>(partitions_scanned)) +
               " pruned=" +
               std::to_string(static_cast<long long>(partitions_pruned)) + ")";
      }
      break;
    case PhysOpKind::kCachedResultScan:
      out += " " + table_name;
      if (alias != table_name) out += " AS " + alias;
      if (has_scan_condition && scan_condition.size() > 0) {
        out += " stored [" + scan_condition.ToString() + "]";
      }
      out += " rows=" +
             std::to_string(cached_rows == nullptr ? 0 : cached_rows->size());
      break;
    case PhysOpKind::kIndexScan:
      out += " " + table_name;
      if (alias != table_name) out += " AS " + alias;
      out += " ON " + index_column;
      if (index_condition) out += " [" + index_condition->ToString() + "]";
      if (predicate) out += " residual [" + predicate->ToString() + "]";
      break;
    case PhysOpKind::kFilter:
      if (predicate) out += " [" + predicate->ToString() + "]";
      break;
    case PhysOpKind::kNestedLoopsJoin:
    case PhysOpKind::kLeftOuterJoin:
      if (join_condition) out += " [" + join_condition->ToString() + "]";
      break;
    case PhysOpKind::kSemiJoin:
      if (!left_keys.empty()) {
        out += " [" + left_keys[0]->ToString() + " IN right]";
      }
      break;
    case PhysOpKind::kHashJoin:
    case PhysOpKind::kMergeJoin: {
      out += " [";
      for (size_t i = 0; i < left_keys.size(); ++i) {
        if (i > 0) out += " AND ";
        out += left_keys[i]->ToString() + " = " + right_keys[i]->ToString();
      }
      out += "]";
      if (join_condition) {
        out += " residual [" + join_condition->ToString() + "]";
      }
      break;
    }
    case PhysOpKind::kProject:
    case PhysOpKind::kAggregate: {
      out += " [";
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ", ";
        out += items[i].ToString();
      }
      out += "]";
      break;
    }
    case PhysOpKind::kUnion:
    case PhysOpKind::kExcept:
      if (all) out += " ALL";
      break;
    default:
      break;
  }
  char buf[96];
  if (actual_rows >= 0) {
    std::snprintf(buf, sizeof(buf), "  (est=%.0f cost=%.0f actual=%lld)",
                  estimated_rows, estimated_cost,
                  static_cast<long long>(actual_rows));
  } else {
    std::snprintf(buf, sizeof(buf), "  (est=%.0f cost=%.0f)", estimated_rows,
                  estimated_cost);
  }
  out += buf;
  out += "\n";
  for (const PhysOpPtr& c : children) out += c->ToString(indent + 1);
  return out;
}

}  // namespace erq
