#pragma once

#include <memory>

#include "common/statusor.h"
#include "catalog/catalog.h"
#include "plan/binder.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"

namespace erq {

/// A planned query: the logical operator tree plus the FROM scope
/// information the empty-result machinery needs (alias -> canonical
/// relation renaming per §2.1).
struct PlannedQuery {
  LogicalOpPtr root;
  FromScope scope;  // scope of the outermost SELECT (empty for set ops)
};

/// Translates an AST into a logical plan:
///   Scan* -> (left-deep) Join tree -> Filter(WHERE) -> OuterJoin* ->
///   Aggregate? -> Filter(HAVING)? -> Project -> Distinct? -> Sort?
/// Column references in every predicate are verified against the scope
/// (existence + non-ambiguity) and fully qualified, but remain slot-unbound
/// (slots are a physical-plan concern).
class Planner {
 public:
  explicit Planner(const Catalog* catalog) : catalog_(catalog) {}

  StatusOr<PlannedQuery> PlanStatement(const Statement& stmt) const;
  StatusOr<PlannedQuery> PlanSelect(const SelectStatement& select) const;

 private:
  /// Qualifies (and validates) every column ref in `expr` against `scope`
  /// without slot-binding.
  StatusOr<ExprPtr> QualifyExpr(const ExprPtr& expr,
                                const FromScope& scope) const;

  const Catalog* catalog_;
};

}  // namespace erq

