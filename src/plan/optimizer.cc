#include "plan/optimizer.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/string_util.h"
#include "expr/normalize.h"
#include "expr/primitive.h"
#include "stats/partition_stats.h"

namespace erq {

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred) {
  std::vector<ExprPtr> out;
  if (pred == nullptr) return out;
  if (pred->kind() == Expr::Kind::kAnd) {
    for (const ExprPtr& c : pred->children()) {
      std::vector<ExprPtr> sub = SplitConjuncts(c);
      out.insert(out.end(), sub.begin(), sub.end());
    }
  } else {
    out.push_back(pred);
  }
  return out;
}

namespace {

/// Lowercased aliases referenced by an expression.
std::set<std::string> ReferencedAliases(const Expr& e) {
  std::vector<std::pair<std::string, std::string>> refs;
  e.CollectColumnRefs(&refs);
  std::set<std::string> out;
  for (const auto& [q, c] : refs) out.insert(ToLower(q));
  return out;
}

bool IsSubset(const std::set<std::string>& a, const std::set<std::string>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// If `conjunct` is a sargable single-column interval predicate
/// (col cmp literal, literal cmp col, or col BETWEEN lit AND lit),
/// extracts the column name and bounds. Returns false otherwise.
bool ExtractSargable(const Expr& conjunct, std::string* column, Bound* lo,
                     Bound* hi) {
  if (conjunct.kind() == Expr::Kind::kBetween && !conjunct.negated()) {
    const Expr& v = *conjunct.child(0);
    const Expr& l = *conjunct.child(1);
    const Expr& h = *conjunct.child(2);
    if (v.kind() == Expr::Kind::kColumnRef &&
        l.kind() == Expr::Kind::kLiteral && !l.value().is_null() &&
        h.kind() == Expr::Kind::kLiteral && !h.value().is_null()) {
      *column = v.column();
      *lo = Bound::Inclusive(l.value());
      *hi = Bound::Inclusive(h.value());
      return true;
    }
    return false;
  }
  if (conjunct.kind() == Expr::Kind::kLike && !conjunct.negated()) {
    // Prefix LIKE patterns are range-sargable: col LIKE 'abc%' scans
    // ["abc", "abd"). Wildcard-free patterns are point lookups.
    const Expr& operand = *conjunct.child(0);
    const Expr& pattern_expr = *conjunct.child(1);
    if (operand.kind() != Expr::Kind::kColumnRef ||
        pattern_expr.kind() != Expr::Kind::kLiteral ||
        pattern_expr.value().type() != DataType::kString) {
      return false;
    }
    const std::string& pattern = pattern_expr.value().AsString();
    size_t wild = pattern.find_first_of("%_");
    if (wild == std::string::npos) {
      *column = operand.column();
      *lo = Bound::Inclusive(pattern_expr.value());
      *hi = Bound::Inclusive(pattern_expr.value());
      return true;
    }
    if (wild > 0 && wild == pattern.size() - 1 && pattern[wild] == '%' &&
        static_cast<unsigned char>(pattern[wild - 1]) < 0xff) {
      std::string prefix = pattern.substr(0, wild);
      std::string upper = prefix;
      upper.back() = static_cast<char>(upper.back() + 1);
      *column = operand.column();
      *lo = Bound::Inclusive(Value::String(std::move(prefix)));
      *hi = Bound::Exclusive(Value::String(std::move(upper)));
      return true;
    }
    return false;
  }
  if (conjunct.kind() != Expr::Kind::kCompare) return false;
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  CompareOp op = conjunct.compare_op();
  if (conjunct.child(0)->kind() == Expr::Kind::kColumnRef &&
      conjunct.child(1)->kind() == Expr::Kind::kLiteral) {
    col = conjunct.child(0).get();
    lit = conjunct.child(1).get();
  } else if (conjunct.child(1)->kind() == Expr::Kind::kColumnRef &&
             conjunct.child(0)->kind() == Expr::Kind::kLiteral) {
    col = conjunct.child(1).get();
    lit = conjunct.child(0).get();
    op = SwapCompareOp(op);
  } else {
    return false;
  }
  if (lit->value().is_null()) return false;
  *column = col->column();
  *lo = Bound::Unbounded();
  *hi = Bound::Unbounded();
  switch (op) {
    case CompareOp::kEq:
      *lo = Bound::Inclusive(lit->value());
      *hi = Bound::Inclusive(lit->value());
      return true;
    case CompareOp::kLt:
      *hi = Bound::Exclusive(lit->value());
      return true;
    case CompareOp::kLe:
      *hi = Bound::Inclusive(lit->value());
      return true;
    case CompareOp::kGt:
      *lo = Bound::Exclusive(lit->value());
      return true;
    case CompareOp::kGe:
      *lo = Bound::Inclusive(lit->value());
      return true;
    case CompareOp::kNe:
      return false;
  }
  return false;
}

/// A join-graph component during greedy join ordering.
struct Component {
  PhysOpPtr plan;
  std::set<std::string> aliases;  // lowercased
  double rows;
};

}  // namespace

struct Optimizer::SpjContext {
  std::vector<std::pair<std::string, std::string>> scans;  // (alias, table)
  std::vector<ExprPtr> conjuncts;
};

StatusOr<PhysOpPtr> Optimizer::Optimize(const LogicalOpPtr& logical) const {
  return OptimizeNode(logical);
}

StatusOr<PhysOpPtr> Optimizer::OptimizeNode(const LogicalOpPtr& node) const {
  switch (node->kind) {
    case LogicalOpKind::kScan:
    case LogicalOpKind::kJoin:
      return OptimizeSpj(node);
    case LogicalOpKind::kFilter: {
      // Filter over an SPJ core is folded into join planning; a filter over
      // anything else becomes a physical Filter node.
      const LogicalOpPtr& input = node->children[0];
      if (input->kind == LogicalOpKind::kScan ||
          input->kind == LogicalOpKind::kJoin ||
          input->kind == LogicalOpKind::kFilter) {
        return OptimizeSpj(node);
      }
      ERQ_ASSIGN_OR_RETURN(PhysOpPtr child, OptimizeNode(input));
      PhysOpPtr filter = PhysicalOperator::Make(PhysOpKind::kFilter);
      ERQ_ASSIGN_OR_RETURN(filter->predicate,
                           BindExpr(node->predicate, child->layout));
      filter->layout = child->layout;
      filter->estimated_rows = child->estimated_rows * 0.5;
      filter->estimated_cost =
          child->estimated_cost + cost_model_.FilterCost(child->estimated_rows);
      filter->children = {std::move(child)};
      return filter;
    }
    case LogicalOpKind::kSemiJoin: {
      ERQ_ASSIGN_OR_RETURN(PhysOpPtr left, OptimizeNode(node->children[0]));
      ERQ_ASSIGN_OR_RETURN(PhysOpPtr right, OptimizeNode(node->children[1]));
      if (right->layout.size() != 1) {
        return Status::BindError(
            "IN (subquery) requires a single-column subquery, got " +
            std::to_string(right->layout.size()));
      }
      PhysOpPtr join = PhysicalOperator::Make(PhysOpKind::kSemiJoin);
      join->layout = left->layout;
      ERQ_ASSIGN_OR_RETURN(ExprPtr operand,
                           BindExpr(node->predicate, left->layout));
      join->left_keys.push_back(std::move(operand));
      const BoundColumn& rc = right->layout.column(0);
      join->right_keys.push_back(
          Expr::MakeBoundColumnRef(rc.alias, rc.column, 0));
      join->estimated_rows = std::max(1.0, left->estimated_rows * 0.3);
      join->estimated_cost =
          left->estimated_cost + right->estimated_cost +
          cost_model_.HashJoinCost(left->estimated_rows,
                                   right->estimated_rows);
      join->children = {std::move(left), std::move(right)};
      return join;
    }
    case LogicalOpKind::kOuterJoin: {
      ERQ_ASSIGN_OR_RETURN(PhysOpPtr left, OptimizeNode(node->children[0]));
      ERQ_ASSIGN_OR_RETURN(PhysOpPtr right, OptimizeNode(node->children[1]));
      PhysOpPtr join = PhysicalOperator::Make(PhysOpKind::kLeftOuterJoin);
      join->layout = Layout::Concat(left->layout, right->layout);
      ERQ_ASSIGN_OR_RETURN(join->join_condition,
                           BindExpr(node->predicate, join->layout));
      join->estimated_rows =
          std::max(left->estimated_rows,
                   left->estimated_rows * right->estimated_rows * 0.01);
      join->estimated_cost =
          left->estimated_cost + right->estimated_cost +
          cost_model_.NestedLoopsJoinCost(left->estimated_rows,
                                          right->estimated_rows);
      join->children = {std::move(left), std::move(right)};
      return join;
    }
    case LogicalOpKind::kProject: {
      ERQ_ASSIGN_OR_RETURN(PhysOpPtr child, OptimizeNode(node->children[0]));
      PhysOpPtr project = PhysicalOperator::Make(PhysOpKind::kProject);
      Layout layout;
      std::vector<SelectItem> bound_items;
      for (const SelectItem& item : node->items) {
        if (item.kind == SelectItem::Kind::kStar) {
          // Star: pass-through of the child layout.
          for (const BoundColumn& c : child->layout.columns()) {
            layout.Add(c);
          }
          bound_items.push_back(item);
          continue;
        }
        SelectItem bound = item;
        ERQ_ASSIGN_OR_RETURN(bound.expr, BindExpr(item.expr, child->layout));
        DataType type = DataType::kNull;
        std::string name = item.alias;
        if (bound.expr->kind() == Expr::Kind::kColumnRef) {
          const BoundColumn& src =
              child->layout.column(static_cast<size_t>(bound.expr->slot()));
          type = src.type;
          if (name.empty()) name = src.column;
        } else if (name.empty()) {
          name = bound.expr->ToString();
        }
        layout.Add(BoundColumn{"", name, type});
        bound_items.push_back(std::move(bound));
      }
      project->items = std::move(bound_items);
      project->layout = std::move(layout);
      project->estimated_rows = child->estimated_rows;
      project->estimated_cost = child->estimated_cost +
                                cost_model_.ProjectCost(child->estimated_rows);
      project->children = {std::move(child)};
      return project;
    }
    case LogicalOpKind::kAggregate: {
      ERQ_ASSIGN_OR_RETURN(PhysOpPtr child, OptimizeNode(node->children[0]));
      PhysOpPtr agg = PhysicalOperator::Make(PhysOpKind::kAggregate);
      Layout layout;
      for (const ExprPtr& g : node->group_by) {
        ERQ_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(g, child->layout));
        DataType type = DataType::kNull;
        std::string name = bound->ToString();
        if (bound->kind() == Expr::Kind::kColumnRef) {
          const BoundColumn& src =
              child->layout.column(static_cast<size_t>(bound->slot()));
          type = src.type;
          name = src.column;
        }
        layout.Add(BoundColumn{"", name, type});
        agg->group_by.push_back(std::move(bound));
      }
      for (const SelectItem& item : node->items) {
        SelectItem bound = item;
        if (item.expr) {
          ERQ_ASSIGN_OR_RETURN(bound.expr, BindExpr(item.expr, child->layout));
        }
        if (item.kind == SelectItem::Kind::kAggregate) {
          DataType type = DataType::kDouble;
          if (item.agg == AggFunc::kCount) type = DataType::kInt64;
          std::string name = item.alias.empty()
                                 ? ToLower(AggFuncToString(item.agg))
                                 : item.alias;
          layout.Add(BoundColumn{"", name, type});
        }
        // Non-aggregate items must match group-by columns; the executor
        // resolves them against the grouped layout.
        agg->items.push_back(std::move(bound));
      }
      agg->layout = std::move(layout);
      agg->estimated_rows = node->group_by.empty()
                                ? 1.0
                                : std::max(1.0, child->estimated_rows * 0.1);
      agg->estimated_cost = child->estimated_cost +
                            cost_model_.AggregateCost(child->estimated_rows);
      agg->children = {std::move(child)};
      return agg;
    }
    case LogicalOpKind::kDistinct: {
      ERQ_ASSIGN_OR_RETURN(PhysOpPtr child, OptimizeNode(node->children[0]));
      PhysOpPtr distinct = PhysicalOperator::Make(PhysOpKind::kDistinct);
      distinct->layout = child->layout;
      distinct->estimated_rows = child->estimated_rows * 0.9;
      distinct->estimated_cost =
          child->estimated_cost + cost_model_.DistinctCost(child->estimated_rows);
      distinct->children = {std::move(child)};
      return distinct;
    }
    case LogicalOpKind::kSort: {
      ERQ_ASSIGN_OR_RETURN(PhysOpPtr child, OptimizeNode(node->children[0]));
      PhysOpPtr sort = PhysicalOperator::Make(PhysOpKind::kSort);
      sort->layout = child->layout;
      for (const OrderItem& o : node->order_by) {
        OrderItem bound = o;
        ERQ_ASSIGN_OR_RETURN(bound.expr, BindExpr(o.expr, child->layout));
        sort->order_by.push_back(std::move(bound));
      }
      sort->estimated_rows = child->estimated_rows;
      sort->estimated_cost =
          child->estimated_cost + cost_model_.SortCost(child->estimated_rows);
      sort->children = {std::move(child)};
      return sort;
    }
    case LogicalOpKind::kUnion:
    case LogicalOpKind::kExcept: {
      ERQ_ASSIGN_OR_RETURN(PhysOpPtr left, OptimizeNode(node->children[0]));
      ERQ_ASSIGN_OR_RETURN(PhysOpPtr right, OptimizeNode(node->children[1]));
      if (left->layout.size() != right->layout.size()) {
        return Status::BindError(
            "set operation inputs have different arities");
      }
      PhysOpPtr setop = PhysicalOperator::Make(
          node->kind == LogicalOpKind::kUnion ? PhysOpKind::kUnion
                                              : PhysOpKind::kExcept);
      setop->all = node->all;
      setop->layout = left->layout;
      setop->estimated_rows =
          node->kind == LogicalOpKind::kUnion
              ? left->estimated_rows + right->estimated_rows
              : left->estimated_rows;
      setop->estimated_cost =
          left->estimated_cost + right->estimated_cost +
          cost_model_.DistinctCost(left->estimated_rows +
                                   right->estimated_rows);
      setop->children = {std::move(left), std::move(right)};
      return setop;
    }
  }
  return Status::Internal("unhandled logical node");
}

StatusOr<PhysOpPtr> Optimizer::BuildAccessPath(
    const std::string& alias, const std::string& table_name,
    std::vector<ExprPtr> conjuncts, const AliasMap& aliases) const {
  ERQ_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(table_name));
  double table_rows = static_cast<double>(
      stats_ != nullptr && stats_->HasTableStats(table_name)
          ? stats_->GetRowCount(table_name)
          : table->num_rows());

  // Try to find the most selective sargable conjunct with an index.
  int best_idx = -1;
  SortedIndex* best_index = nullptr;
  std::string best_column;
  Bound best_lo = Bound::Unbounded(), best_hi = Bound::Unbounded();
  double best_sel = 1.0;
  if (options_.enable_index_scan) {
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      std::string column;
      Bound lo, hi;
      if (!ExtractSargable(*conjuncts[i], &column, &lo, &hi)) continue;
      SortedIndex* index = catalog_->FindIndex(table_name, column);
      if (index == nullptr) continue;
      double sel = cost_model_.EstimateSelectivity(*conjuncts[i], aliases);
      if (best_idx < 0 || sel < best_sel) {
        best_idx = static_cast<int>(i);
        best_index = index;
        best_column = column;
        best_lo = lo;
        best_hi = hi;
        best_sel = sel;
      }
    }
  }

  PhysOpPtr scan;
  Layout scan_layout = ScanLayout(*table, alias);
  if (best_idx >= 0) {
    scan = PhysicalOperator::Make(PhysOpKind::kIndexScan);
    scan->table = table;
    scan->table_name = table_name;
    scan->alias = alias;
    scan->index = best_index;
    scan->index_column = best_column;
    scan->index_lo = best_lo;
    scan->index_hi = best_hi;
    scan->layout = scan_layout;
    ERQ_ASSIGN_OR_RETURN(scan->index_condition,
                         BindExpr(conjuncts[static_cast<size_t>(best_idx)],
                                  scan_layout));
    conjuncts.erase(conjuncts.begin() + best_idx);
    scan->estimated_rows = std::max(1.0, table_rows * best_sel);
    scan->estimated_cost =
        cost_model_.IndexScanCost(table_rows, scan->estimated_rows);
  } else {
    // Canonicalize the primitive-classifiable single-table conjuncts once:
    // the alias is rewritten to the canonical (lowercased base table)
    // relation name and unclassifiable conjuncts are simply left out. The
    // resulting conjunction is *weaker* than the full local predicate but
    // still implied by it, so both of its consumers stay sound: the reuse
    // probe (a stored condition covering the weak probe also covers the
    // full predicate) and partition pruning (every emitted row still
    // passes the Filter above; the conjuncts vector is deliberately not
    // consumed here).
    std::unordered_map<std::string, std::string> to_canonical{
        {ToLower(alias), ToLower(table_name)}};
    std::vector<PrimitiveTerm> terms;
    std::vector<ExprPtr> probe_parts;
    for (const ExprPtr& c : conjuncts) {
      StatusOr<ExprPtr> canonical = RewriteQualifiers(c, to_canonical);
      if (!canonical.ok()) continue;
      StatusOr<PrimitiveTerm> term = PrimitiveTerm::FromExpr(canonical.value());
      if (!term.ok()) continue;
      if (term.value().kind() == PrimitiveTerm::Kind::kOpaque) continue;
      terms.push_back(std::move(term).value());
      probe_parts.push_back(c);
    }
    Conjunction canonical_condition = Conjunction::Make(std::move(terms));

    if (options_.reuse_source != nullptr) {
      // Reuse splice: a stored intermediate covering the probe is a
      // superset of this scan's filtered output, in the same (ascending
      // row) order the table scan would emit — so the cached rows replace
      // the scan byte-for-byte once the Filter built below re-applies the
      // full local predicate as the residual.
      std::optional<ReuseSplice> hit = options_.reuse_source->Lookup(
          ToLower(table_name), canonical_condition);
      if (hit.has_value()) {
        scan = PhysicalOperator::Make(PhysOpKind::kCachedResultScan);
        scan->table = table;
        scan->table_name = table_name;
        scan->alias = alias;
        scan->layout = scan_layout;
        scan->cached_rows = hit->rows;
        scan->reuse_entry_id = hit->entry_id;
        scan->scan_condition = std::move(hit->stored_condition);
        scan->has_scan_condition = scan->scan_condition.size() > 0;
        scan->estimated_rows = static_cast<double>(hit->rows->size());
        scan->estimated_cost = cost_model_.TableScanCost(scan->estimated_rows);
      }
    }
    if (scan == nullptr) {
      scan = PhysicalOperator::Make(PhysOpKind::kTableScan);
      scan->table = table;
      scan->table_name = table_name;
      scan->alias = alias;
      scan->layout = scan_layout;
      scan->estimated_rows = table_rows;
      scan->estimated_cost = cost_model_.TableScanCost(table_rows);
      if (table->partitioned() && canonical_condition.size() > 0) {
        scan->scan_condition = std::move(canonical_condition);
        scan->has_scan_condition = true;
        ERQ_ASSIGN_OR_RETURN(
            scan->partition_probe,
            BindExpr(Expr::MakeAnd(std::move(probe_parts)), scan_layout));
        // Cost the scan by its zone-map survivor bound, so the C_cost gate
        // sees the pruned (cheaper) scan the executor will actually run.
        auto snapshot = table->partition_snapshot();
        if (snapshot != nullptr) {
          PartitionSurvivorEstimate est =
              EstimateSurvivors(*snapshot, table->schema(),
                                ToLower(table_name), scan->scan_condition);
          double surviving = static_cast<double>(est.surviving_rows);
          scan->estimated_rows = std::min(table_rows, surviving);
          scan->estimated_cost =
              cost_model_.TableScanCost(scan->estimated_rows);
        }
      }
    }
  }

  if (conjuncts.empty()) return scan;

  // Remaining single-table conjuncts become one explicit Filter node, so
  // the executor records its output cardinality (Operation O2 needs the
  // selection operator's observed emptiness).
  PhysOpPtr filter = PhysicalOperator::Make(PhysOpKind::kFilter);
  ExprPtr pred = Expr::MakeAnd(std::move(conjuncts));
  double sel = cost_model_.EstimateSelectivity(*pred, aliases);
  ERQ_ASSIGN_OR_RETURN(filter->predicate, BindExpr(pred, scan_layout));
  filter->layout = scan_layout;
  filter->estimated_rows = std::max(0.0, scan->estimated_rows * sel);
  filter->estimated_cost =
      scan->estimated_cost + cost_model_.FilterCost(scan->estimated_rows);
  filter->children = {std::move(scan)};
  return filter;
}

StatusOr<PhysOpPtr> Optimizer::OptimizeSpj(const LogicalOpPtr& root) const {
  // Collect the SPJ core: scans and conjuncts.
  SpjContext ctx;
  std::vector<const LogicalOperator*> stack = {root.get()};
  while (!stack.empty()) {
    const LogicalOperator* node = stack.back();
    stack.pop_back();
    switch (node->kind) {
      case LogicalOpKind::kScan:
        ctx.scans.emplace_back(node->alias, node->table_name);
        break;
      case LogicalOpKind::kFilter: {
        std::vector<ExprPtr> cs = SplitConjuncts(node->predicate);
        ctx.conjuncts.insert(ctx.conjuncts.end(), cs.begin(), cs.end());
        stack.push_back(node->children[0].get());
        break;
      }
      case LogicalOpKind::kJoin: {
        if (node->predicate) {
          std::vector<ExprPtr> cs = SplitConjuncts(node->predicate);
          ctx.conjuncts.insert(ctx.conjuncts.end(), cs.begin(), cs.end());
        }
        stack.push_back(node->children[1].get());
        stack.push_back(node->children[0].get());
        break;
      }
      default:
        return Status::Internal("non-SPJ node inside SPJ core: " +
                                std::string(LogicalOpKindToString(node->kind)));
    }
  }
  std::reverse(ctx.scans.begin(), ctx.scans.end());

  AliasMap aliases;
  for (const auto& [alias, table] : ctx.scans) {
    aliases[ToLower(alias)] = table;
  }

  // Partition conjuncts: single-alias ones feed access paths.
  std::vector<ExprPtr> multi;
  std::unordered_map<std::string, std::vector<ExprPtr>> single;
  for (const ExprPtr& c : ctx.conjuncts) {
    std::set<std::string> refs = ReferencedAliases(*c);
    if (refs.size() == 1) {
      single[*refs.begin()].push_back(c);
    } else {
      multi.push_back(c);
    }
  }

  // Build one component per relation.
  std::vector<Component> components;
  for (const auto& [alias, table] : ctx.scans) {
    ERQ_ASSIGN_OR_RETURN(
        PhysOpPtr plan,
        BuildAccessPath(alias, table, single[ToLower(alias)], aliases));
    Component comp;
    comp.rows = plan->estimated_rows;
    comp.plan = std::move(plan);
    comp.aliases = {ToLower(alias)};
    components.push_back(std::move(comp));
  }

  // Greedy join ordering.
  std::vector<ExprPtr> remaining = std::move(multi);
  while (components.size() > 1) {
    // Find the best connected pair (one minimizing estimated output rows);
    // fall back to the two smallest components (cross product).
    double best_rows = std::numeric_limits<double>::infinity();
    size_t best_a = 0, best_b = 1;
    bool found_connected = false;
    for (size_t a = 0; a < components.size(); ++a) {
      for (size_t b = a + 1; b < components.size(); ++b) {
        std::set<std::string> combined = components[a].aliases;
        combined.insert(components[b].aliases.begin(),
                        components[b].aliases.end());
        double sel = 1.0;
        bool connected = false;
        for (const ExprPtr& c : remaining) {
          std::set<std::string> refs = ReferencedAliases(*c);
          if (IsSubset(refs, combined) &&
              !IsSubset(refs, components[a].aliases) &&
              !IsSubset(refs, components[b].aliases)) {
            connected = true;
            sel *= cost_model_.EstimateSelectivity(*c, aliases);
          }
        }
        if (!connected) continue;
        double rows = components[a].rows * components[b].rows * sel;
        if (!found_connected || rows < best_rows) {
          found_connected = true;
          best_rows = rows;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (!found_connected) {
      // Cross product of the two smallest components.
      std::vector<size_t> order(components.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return components[x].rows < components[y].rows;
      });
      best_a = std::min(order[0], order[1]);
      best_b = std::max(order[0], order[1]);
    }

    Component left = std::move(components[best_a]);
    Component right = std::move(components[best_b]);
    components.erase(components.begin() + best_b);
    components.erase(components.begin() + best_a);

    std::set<std::string> combined = left.aliases;
    combined.insert(right.aliases.begin(), right.aliases.end());

    // Gather conjuncts now applicable.
    std::vector<ExprPtr> applicable;
    for (auto it = remaining.begin(); it != remaining.end();) {
      std::set<std::string> refs = ReferencedAliases(**it);
      if (IsSubset(refs, combined)) {
        applicable.push_back(*it);
        it = remaining.erase(it);
      } else {
        ++it;
      }
    }

    // Split equi-key conjuncts from residuals.
    std::vector<ExprPtr> left_keys, right_keys, residual;
    for (const ExprPtr& c : applicable) {
      bool is_key = false;
      if (c->kind() == Expr::Kind::kCompare &&
          c->compare_op() == CompareOp::kEq) {
        std::set<std::string> l = ReferencedAliases(*c->child(0));
        std::set<std::string> r = ReferencedAliases(*c->child(1));
        if (!l.empty() && !r.empty()) {
          if (IsSubset(l, left.aliases) && IsSubset(r, right.aliases)) {
            left_keys.push_back(c->child(0));
            right_keys.push_back(c->child(1));
            is_key = true;
          } else if (IsSubset(r, left.aliases) && IsSubset(l, right.aliases)) {
            left_keys.push_back(c->child(1));
            right_keys.push_back(c->child(0));
            is_key = true;
          }
        }
      }
      if (!is_key) residual.push_back(c);
    }

    double sel = 1.0;
    for (const ExprPtr& c : applicable) {
      sel *= cost_model_.EstimateSelectivity(*c, aliases);
    }

    PhysOpPtr join;
    Layout joined_layout = Layout::Concat(left.plan->layout,
                                          right.plan->layout);
    bool use_keys = !left_keys.empty() &&
                    (options_.enable_hash_join || options_.prefer_merge_join);
    if (use_keys) {
      join = PhysicalOperator::Make(options_.prefer_merge_join
                                        ? PhysOpKind::kMergeJoin
                                        : PhysOpKind::kHashJoin);
      for (size_t i = 0; i < left_keys.size(); ++i) {
        ERQ_ASSIGN_OR_RETURN(ExprPtr lk,
                             BindExpr(left_keys[i], left.plan->layout));
        ERQ_ASSIGN_OR_RETURN(ExprPtr rk,
                             BindExpr(right_keys[i], right.plan->layout));
        join->left_keys.push_back(std::move(lk));
        join->right_keys.push_back(std::move(rk));
      }
      if (!residual.empty()) {
        ERQ_ASSIGN_OR_RETURN(
            join->join_condition,
            BindExpr(Expr::MakeAnd(std::move(residual)), joined_layout));
      }
      join->estimated_cost =
          left.plan->estimated_cost + right.plan->estimated_cost +
          (options_.prefer_merge_join
               ? cost_model_.MergeJoinCost(left.rows, right.rows)
               : cost_model_.HashJoinCost(left.rows, right.rows));
    } else {
      join = PhysicalOperator::Make(PhysOpKind::kNestedLoopsJoin);
      std::vector<ExprPtr> all_conjuncts;
      for (size_t i = 0; i < left_keys.size(); ++i) {
        all_conjuncts.push_back(Expr::MakeCompare(CompareOp::kEq, left_keys[i],
                                                  right_keys[i]));
      }
      all_conjuncts.insert(all_conjuncts.end(), residual.begin(),
                           residual.end());
      if (!all_conjuncts.empty()) {
        ERQ_ASSIGN_OR_RETURN(
            join->join_condition,
            BindExpr(Expr::MakeAnd(std::move(all_conjuncts)), joined_layout));
      }
      join->estimated_cost =
          left.plan->estimated_cost + right.plan->estimated_cost +
          cost_model_.NestedLoopsJoinCost(left.rows, right.rows);
    }
    join->layout = std::move(joined_layout);
    join->estimated_rows = std::max(0.0, left.rows * right.rows * sel);
    join->children = {left.plan, right.plan};

    Component merged;
    merged.rows = join->estimated_rows;
    merged.plan = std::move(join);
    merged.aliases = std::move(combined);
    components.push_back(std::move(merged));
  }

  PhysOpPtr result = std::move(components[0].plan);
  if (!remaining.empty()) {
    PhysOpPtr filter = PhysicalOperator::Make(PhysOpKind::kFilter);
    ExprPtr pred = Expr::MakeAnd(std::move(remaining));
    double sel = cost_model_.EstimateSelectivity(*pred, aliases);
    ERQ_ASSIGN_OR_RETURN(filter->predicate, BindExpr(pred, result->layout));
    filter->layout = result->layout;
    filter->estimated_rows = result->estimated_rows * sel;
    filter->estimated_cost =
        result->estimated_cost + cost_model_.FilterCost(result->estimated_rows);
    filter->children = {std::move(result)};
    result = std::move(filter);
  }
  return result;
}

}  // namespace erq
