#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "catalog/catalog.h"
#include "expr/expr.h"
#include "sql/ast.h"

namespace erq {

/// One column of an operator's output row.
struct BoundColumn {
  std::string alias;   // table alias the column originates from ("" = derived)
  std::string column;  // column name
  DataType type;
};

/// The output row layout of a (physical) operator: an ordered list of
/// columns. Expressions are bound against a layout, turning qualified
/// column references into row-slot indices.
class Layout {
 public:
  Layout() = default;
  explicit Layout(std::vector<BoundColumn> columns)
      : columns_(std::move(columns)) {}

  size_t size() const { return columns_.size(); }
  const BoundColumn& column(size_t i) const { return columns_[i]; }
  const std::vector<BoundColumn>& columns() const { return columns_; }
  void Add(BoundColumn c) { columns_.push_back(std::move(c)); }

  /// Concatenation (join output layout).
  static Layout Concat(const Layout& left, const Layout& right);

  /// Resolves qualifier.column: qualifier empty => search all (ambiguity is
  /// an error). Case-insensitive. When a non-empty qualifier matches no
  /// column at all, retries by column name alone (derived layouts such as
  /// aggregate outputs drop qualifiers).
  StatusOr<int> Resolve(const std::string& qualifier,
                        const std::string& column) const;

  std::string ToString() const;

 private:
  std::vector<BoundColumn> columns_;
};

/// Builds the layout of a base-table scan: all table columns under `alias`.
Layout ScanLayout(const Table& table, const std::string& alias);

/// Returns a copy of `expr` with every column reference slot-bound against
/// `layout` and its qualifier filled in (unqualified refs get the alias
/// that resolved them). Also type-checks comparisons whose operand types
/// are statically known to be incomparable.
StatusOr<ExprPtr> BindExpr(const ExprPtr& expr, const Layout& layout);

/// Scope used while planning a SELECT: alias -> table, insertion-ordered.
class FromScope {
 public:
  /// Registers the FROM list (and outer-join right sides); rejects
  /// duplicate aliases and unknown tables.
  Status Add(const Catalog& catalog, const TableRef& ref);

  const std::vector<TableRef>& tables() const { return tables_; }
  const Table* TableForAlias(const std::string& alias) const;
  bool HasAlias(const std::string& alias) const;

  /// alias (lowercased) -> canonical relation name per §2.1: the first
  /// occurrence of a table keeps its name; later occurrences become
  /// "name#2", "name#3", ...
  std::unordered_map<std::string, std::string> CanonicalRelationMap() const;

 private:
  std::vector<TableRef> tables_;
  std::unordered_map<std::string, const Table*> by_alias_;
};

}  // namespace erq

