#include "plan/planner.h"

#include "plan/optimizer.h"

namespace erq {

StatusOr<ExprPtr> Planner::QualifyExpr(const ExprPtr& expr,
                                       const FromScope& scope) const {
  Layout layout;
  for (const TableRef& ref : scope.tables()) {
    const Table* table = scope.TableForAlias(ref.alias);
    layout = Layout::Concat(layout, ScanLayout(*table, ref.alias));
  }
  // BindExpr fills qualifiers (and slots relative to the all-tables layout,
  // which the logical plan ignores).
  return BindExpr(expr, layout);
}

StatusOr<PlannedQuery> Planner::PlanSelect(const SelectStatement& select) const {
  if (select.from.empty()) {
    return Status::NotSupported("queries without FROM are not supported");
  }
  PlannedQuery out;
  for (const TableRef& ref : select.from) {
    ERQ_RETURN_IF_ERROR(out.scope.Add(*catalog_, ref));
  }
  for (const OuterJoin& oj : select.outer_joins) {
    ERQ_RETURN_IF_ERROR(out.scope.Add(*catalog_, oj.right));
  }

  // Left-deep cross-join tree over the plain FROM list.
  LogicalOpPtr root;
  for (const TableRef& ref : select.from) {
    LogicalOpPtr scan = LogicalOperator::Scan(ref.table_name, ref.alias);
    root = root == nullptr
               ? scan
               : LogicalOperator::Join(std::move(root), scan, nullptr);
  }

  // Separate IN-subquery markers (top-level conjuncts only) from the rest
  // of the WHERE clause, then qualify and apply the remainder.
  std::vector<int> subquery_indexes;
  if (select.where) {
    std::vector<ExprPtr> keep;
    for (const ExprPtr& conjunct : SplitConjuncts(select.where)) {
      if (conjunct->kind() == Expr::Kind::kColumnRef &&
          conjunct->qualifier().empty()) {
        int idx = ParseSubqueryMarker(conjunct->column());
        if (idx >= 0) {
          if (static_cast<size_t>(idx) >= select.in_subqueries.size()) {
            return Status::Internal("dangling subquery marker");
          }
          subquery_indexes.push_back(idx);
          continue;
        }
      }
      keep.push_back(conjunct);
    }
    if (!keep.empty()) {
      ExprPtr rest = Expr::MakeAnd(std::move(keep));
      // Nested markers (inside OR / NOT) are not supported.
      std::vector<std::pair<std::string, std::string>> refs;
      rest->CollectColumnRefs(&refs);
      for (const auto& [q, c] : refs) {
        if (q.empty() && ParseSubqueryMarker(c) >= 0) {
          return Status::NotSupported(
              "IN (subquery) is only supported as a top-level AND conjunct");
        }
      }
      ERQ_ASSIGN_OR_RETURN(ExprPtr where, QualifyExpr(rest, out.scope));
      root = LogicalOperator::Filter(std::move(root), std::move(where));
    }
  }

  for (int idx : subquery_indexes) {
    const InSubquery& sub = select.in_subqueries[static_cast<size_t>(idx)];
    ERQ_ASSIGN_OR_RETURN(ExprPtr operand,
                         QualifyExpr(sub.operand, out.scope));
    ERQ_ASSIGN_OR_RETURN(PlannedQuery subplan, PlanStatement(*sub.query));
    root = LogicalOperator::SemiJoin(std::move(root), subplan.root,
                                     std::move(operand));
  }

  for (const OuterJoin& oj : select.outer_joins) {
    LogicalOpPtr right = LogicalOperator::Scan(oj.right.table_name,
                                               oj.right.alias);
    ERQ_ASSIGN_OR_RETURN(ExprPtr cond, QualifyExpr(oj.condition, out.scope));
    root = LogicalOperator::OuterJoin(std::move(root), std::move(right),
                                      std::move(cond));
  }

  // Qualify select items.
  std::vector<SelectItem> items;
  items.reserve(select.items.size());
  bool has_aggregate = false;
  for (const SelectItem& item : select.items) {
    SelectItem qualified = item;
    if (item.expr) {
      ERQ_ASSIGN_OR_RETURN(qualified.expr, QualifyExpr(item.expr, out.scope));
    }
    if (item.kind == SelectItem::Kind::kAggregate) has_aggregate = true;
    items.push_back(std::move(qualified));
  }

  if (has_aggregate || !select.group_by.empty()) {
    std::vector<ExprPtr> group_by;
    group_by.reserve(select.group_by.size());
    for (const ExprPtr& g : select.group_by) {
      ERQ_ASSIGN_OR_RETURN(ExprPtr qg, QualifyExpr(g, out.scope));
      group_by.push_back(std::move(qg));
    }
    for (const SelectItem& item : items) {
      if (item.kind == SelectItem::Kind::kStar) {
        return Status::NotSupported("SELECT * with aggregation");
      }
    }
    root = LogicalOperator::Aggregate(std::move(root), items,
                                      std::move(group_by));
    if (select.having) {
      // HAVING over the aggregate output is bound against aggregate
      // aliases at execution; restrict to grouped columns here.
      ERQ_ASSIGN_OR_RETURN(ExprPtr having,
                           QualifyExpr(select.having, out.scope));
      root = LogicalOperator::Filter(std::move(root), std::move(having));
    }
  } else {
    root = LogicalOperator::Project(std::move(root), items);
  }

  if (select.distinct) {
    root = LogicalOperator::Distinct(std::move(root));
  }
  if (!select.order_by.empty()) {
    std::vector<OrderItem> order;
    order.reserve(select.order_by.size());
    for (const OrderItem& o : select.order_by) {
      OrderItem qualified = o;
      ERQ_ASSIGN_OR_RETURN(qualified.expr, QualifyExpr(o.expr, out.scope));
      order.push_back(std::move(qualified));
    }
    root = LogicalOperator::Sort(std::move(root), std::move(order));
  }
  out.root = std::move(root);
  return out;
}

StatusOr<PlannedQuery> Planner::PlanStatement(const Statement& stmt) const {
  switch (stmt.op) {
    case Statement::Op::kSelect:
      return PlanSelect(*stmt.select);
    case Statement::Op::kUnion:
    case Statement::Op::kExcept: {
      ERQ_ASSIGN_OR_RETURN(PlannedQuery left, PlanStatement(*stmt.left));
      ERQ_ASSIGN_OR_RETURN(PlannedQuery right, PlanStatement(*stmt.right));
      PlannedQuery out;
      out.root = stmt.op == Statement::Op::kUnion
                     ? LogicalOperator::Union(left.root, right.root, stmt.all)
                     : LogicalOperator::Except(left.root, right.root, stmt.all);
      return out;
    }
  }
  return Status::Internal("unknown statement op");
}

}  // namespace erq
