#pragma once

/// \file
/// ReuseSpliceSource — the optimizer-facing face of the intermediate-result
/// reuse store (src/reuse/), kept abstract so erq_plan needs no knowledge
/// of the store's implementation (the same inversion PartitionCoverageOracle
/// uses to keep erq_exec independent of the detector).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/primitive.h"
#include "types/value.h"

namespace erq {

/// One successful reuse lookup: the materialized rows of a cached
/// intermediate that is a superset of the probed sub-plan's output.
struct ReuseSplice {
  /// The cached rows, in the source table's scan layout and in ascending
  /// row order (they were harvested from a Filter-over-TableScan output,
  /// which emits exactly that order). Shared and immutable: the store may
  /// evict the entry while a spliced plan still runs.
  std::shared_ptr<const std::vector<Row>> rows;
  /// The stored entry's selection condition (canonical qualifiers). The
  /// probe condition implies it, so re-applying the query's full local
  /// predicate above the cached rows reproduces the table-scan answer.
  Conjunction stored_condition;
  /// Stable id of the entry served (for tooling / tracing).
  uint64_t entry_id = 0;
};

/// Probe interface the optimizer's splice pass consults while building
/// access paths. Implemented by ReuseStore (src/reuse/reuse_store.h) and
/// injected through OptimizerOptions::reuse_source.
///
/// Soundness contract (Theorem 2, run in the reuse direction): a non-empty
/// result means the store holds rows = sigma_stored(relation) where the
/// probed `condition` implies `stored_condition` — so the cached rows are a
/// superset of any output filtered by a predicate at least as strong as the
/// probe. Implementations must be thread-safe: the optimizer probes from
/// concurrent sessions with no lock held.
class ReuseSpliceSource {
 public:
  virtual ~ReuseSpliceSource() = default;

  /// Searches for a cached intermediate over the canonical (lowercased)
  /// base relation whose stored condition covers `condition` (the
  /// conjunction of the probe's classifiable single-table conjuncts,
  /// canonical qualifiers). Returns the best hit — fewest rows, so the
  /// residual filter re-scans as little as possible — or nullopt.
  virtual std::optional<ReuseSplice> Lookup(
      const std::string& relation, const Conjunction& condition) const = 0;
};

}  // namespace erq
