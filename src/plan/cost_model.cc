#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace erq {

std::shared_ptr<const ColumnStats> CostModel::LookupStats(const Expr& column_ref,
                                          const AliasMap& aliases) const {
  if (stats_ == nullptr || column_ref.kind() != Expr::Kind::kColumnRef) {
    return nullptr;
  }
  auto it = aliases.find(ToLower(column_ref.qualifier()));
  if (it == aliases.end()) return nullptr;
  return stats_->GetColumnStats(it->second, column_ref.column());
}

double CostModel::EstimateSelectivity(const Expr& pred,
                                      const AliasMap& aliases) const {
  switch (pred.kind()) {
    case Expr::Kind::kAnd: {
      double s = 1.0;
      for (const ExprPtr& c : pred.children()) {
        s *= EstimateSelectivity(*c, aliases);
      }
      return s;
    }
    case Expr::Kind::kOr: {
      double not_any = 1.0;
      for (const ExprPtr& c : pred.children()) {
        not_any *= 1.0 - EstimateSelectivity(*c, aliases);
      }
      return 1.0 - not_any;
    }
    case Expr::Kind::kNot:
      return std::clamp(1.0 - EstimateSelectivity(*pred.child(0), aliases),
                        0.0, 1.0);
    case Expr::Kind::kCompare: {
      const Expr& lhs = *pred.child(0);
      const Expr& rhs = *pred.child(1);
      bool l_col = lhs.kind() == Expr::Kind::kColumnRef;
      bool r_col = rhs.kind() == Expr::Kind::kColumnRef;
      bool l_lit = lhs.kind() == Expr::Kind::kLiteral;
      bool r_lit = rhs.kind() == Expr::Kind::kLiteral;
      if (l_col && r_col) {
        if (pred.compare_op() == CompareOp::kEq) {
          return JoinSelectivity(lhs.qualifier(), lhs.column(),
                                 rhs.qualifier(), rhs.column(), aliases);
        }
        return kDefaultSelectivity;
      }
      const Expr* col = l_col ? &lhs : (r_col ? &rhs : nullptr);
      const Expr* lit = r_lit ? &rhs : (l_lit ? &lhs : nullptr);
      if (col == nullptr || lit == nullptr || lit->value().is_null()) {
        return kDefaultSelectivity;
      }
      CompareOp op = l_col ? pred.compare_op() : SwapCompareOp(pred.compare_op());
      std::shared_ptr<const ColumnStats> cs = LookupStats(*col, aliases);
      if (cs == nullptr) {
        return op == CompareOp::kEq ? kDefaultEqSelectivity
                                    : kDefaultSelectivity;
      }
      const Value& v = lit->value();
      switch (op) {
        case CompareOp::kEq:
          return cs->EqualsSelectivity(v);
        case CompareOp::kNe:
          return cs->NotEqualsSelectivity(v);
        case CompareOp::kLt:
          return cs->RangeSelectivity(std::nullopt, false, v, false);
        case CompareOp::kLe:
          return cs->RangeSelectivity(std::nullopt, false, v, true);
        case CompareOp::kGt:
          return cs->RangeSelectivity(v, false, std::nullopt, false);
        case CompareOp::kGe:
          return cs->RangeSelectivity(v, true, std::nullopt, false);
      }
      return kDefaultSelectivity;
    }
    case Expr::Kind::kBetween: {
      const Expr& v = *pred.child(0);
      const Expr& lo = *pred.child(1);
      const Expr& hi = *pred.child(2);
      if (v.kind() == Expr::Kind::kColumnRef &&
          lo.kind() == Expr::Kind::kLiteral &&
          hi.kind() == Expr::Kind::kLiteral) {
        std::shared_ptr<const ColumnStats> cs = LookupStats(v, aliases);
        if (cs != nullptr) {
          double s = cs->RangeSelectivity(lo.value(), true, hi.value(), true);
          return pred.negated() ? std::clamp(1.0 - s, 0.0, 1.0) : s;
        }
      }
      return 0.25;
    }
    case Expr::Kind::kInList: {
      const Expr& v = *pred.child(0);
      std::shared_ptr<const ColumnStats> cs = LookupStats(v, aliases);
      double s = 0.0;
      for (size_t i = 1; i < pred.children().size(); ++i) {
        const Expr& item = *pred.child(i);
        if (cs != nullptr && item.kind() == Expr::Kind::kLiteral &&
            !item.value().is_null()) {
          s += cs->EqualsSelectivity(item.value());
        } else {
          s += kDefaultEqSelectivity;
        }
      }
      s = std::clamp(s, 0.0, 1.0);
      return pred.negated() ? 1.0 - s : s;
    }
    case Expr::Kind::kIsNull: {
      const Expr& v = *pred.child(0);
      std::shared_ptr<const ColumnStats> cs = LookupStats(v, aliases);
      double null_frac = cs != nullptr ? cs->null_fraction() : 0.01;
      return pred.negated() ? 1.0 - null_frac : null_frac;
    }
    case Expr::Kind::kLiteral: {
      const Value& v = pred.value();
      if (v.is_null()) return 0.0;
      return v.AsDouble() != 0.0 ? 1.0 : 0.0;
    }
    default:
      return kDefaultSelectivity;
  }
}

double CostModel::JoinSelectivity(const std::string& left_alias,
                                  const std::string& left_column,
                                  const std::string& right_alias,
                                  const std::string& right_column,
                                  const AliasMap& aliases) const {
  double left_ndv = 0, right_ndv = 0;
  if (stats_ != nullptr) {
    auto l = aliases.find(ToLower(left_alias));
    auto r = aliases.find(ToLower(right_alias));
    if (l != aliases.end()) {
      std::shared_ptr<const ColumnStats> cs = stats_->GetColumnStats(l->second, left_column);
      if (cs != nullptr) left_ndv = cs->ndv;
    }
    if (r != aliases.end()) {
      std::shared_ptr<const ColumnStats> cs = stats_->GetColumnStats(r->second, right_column);
      if (cs != nullptr) right_ndv = cs->ndv;
    }
  }
  double max_ndv = std::max(left_ndv, right_ndv);
  if (max_ndv <= 0.0) return kDefaultEqSelectivity;
  return 1.0 / max_ndv;
}

double CostModel::IndexScanCost(double table_rows, double matching_rows) const {
  double height = table_rows > 1 ? std::log2(table_rows) : 1.0;
  return kIndexLookupCost + height + matching_rows * kIndexTupleCost;
}

double CostModel::HashJoinCost(double left_rows, double right_rows) const {
  return (left_rows + right_rows) * kHashTupleCost;
}

double CostModel::MergeJoinCost(double left_rows, double right_rows) const {
  return SortCost(left_rows) + SortCost(right_rows) +
         (left_rows + right_rows) * kMergeTupleCost;
}

double CostModel::NestedLoopsJoinCost(double left_rows,
                                      double right_rows) const {
  return left_rows * std::max(1.0, right_rows) * kNlTupleCost;
}

double CostModel::SortCost(double rows) const {
  if (rows < 2) return rows;
  return rows * std::log2(rows);
}

}  // namespace erq
