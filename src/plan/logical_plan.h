#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace erq {

/// Logical operator vocabulary. This is the representation §2.4 checks new
/// queries against ("the logical query plan of Q is used"), and the target
/// of the simplification T1–T3 applied to executed physical plans.
enum class LogicalOpKind {
  kScan,       // base table with alias
  kFilter,     // selection
  kProject,    // projection (no influence on emptiness)
  kJoin,       // inner join (condition may be null => cross product)
  kSemiJoin,   // left semi join: IN (subquery) rewrites; `predicate` is the
               // left-side operand, matched against the right child's
               // single output column
  kOuterJoin,  // left outer join
  kSort,
  kDistinct,
  kAggregate,  // grouped or scalar aggregation
  kUnion,
  kExcept,
};

const char* LogicalOpKindToString(LogicalOpKind kind);

struct LogicalOperator;
using LogicalOpPtr = std::shared_ptr<const LogicalOperator>;

/// An immutable logical plan node. Fields are used according to `kind`.
struct LogicalOperator {
  LogicalOpKind kind;
  std::vector<LogicalOpPtr> children;

  // kScan
  std::string table_name;
  std::string alias;

  // kFilter / kJoin / kOuterJoin: predicate (qualified column refs).
  ExprPtr predicate;

  // kProject / kAggregate output description.
  std::vector<SelectItem> items;

  // kAggregate
  std::vector<ExprPtr> group_by;

  // kSort
  std::vector<OrderItem> order_by;

  // kUnion / kExcept
  bool all = false;

  // ---- factories ----
  static LogicalOpPtr Scan(std::string table_name, std::string alias);
  static LogicalOpPtr Filter(LogicalOpPtr input, ExprPtr predicate);
  static LogicalOpPtr Project(LogicalOpPtr input, std::vector<SelectItem> items);
  static LogicalOpPtr Join(LogicalOpPtr left, LogicalOpPtr right,
                           ExprPtr condition);
  /// `operand` is evaluated against left rows and matched (equality)
  /// against the right child's only output column.
  static LogicalOpPtr SemiJoin(LogicalOpPtr left, LogicalOpPtr right,
                               ExprPtr operand);
  static LogicalOpPtr OuterJoin(LogicalOpPtr left, LogicalOpPtr right,
                                ExprPtr condition);
  static LogicalOpPtr Sort(LogicalOpPtr input, std::vector<OrderItem> order);
  static LogicalOpPtr Distinct(LogicalOpPtr input);
  static LogicalOpPtr Aggregate(LogicalOpPtr input,
                                std::vector<SelectItem> items,
                                std::vector<ExprPtr> group_by);
  static LogicalOpPtr Union(LogicalOpPtr left, LogicalOpPtr right, bool all);
  static LogicalOpPtr Except(LogicalOpPtr left, LogicalOpPtr right, bool all);

  /// Collects (alias, table_name) for every scan under this node,
  /// depth-first left-to-right.
  void CollectScans(
      std::vector<std::pair<std::string, std::string>>* out) const;

  /// Indented multi-line rendering.
  std::string ToString(int indent = 0) const;
};

}  // namespace erq

