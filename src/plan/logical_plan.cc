#include "plan/logical_plan.h"

namespace erq {

const char* LogicalOpKindToString(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kScan:
      return "Scan";
    case LogicalOpKind::kFilter:
      return "Filter";
    case LogicalOpKind::kProject:
      return "Project";
    case LogicalOpKind::kJoin:
      return "Join";
    case LogicalOpKind::kSemiJoin:
      return "SemiJoin";
    case LogicalOpKind::kOuterJoin:
      return "LeftOuterJoin";
    case LogicalOpKind::kSort:
      return "Sort";
    case LogicalOpKind::kDistinct:
      return "Distinct";
    case LogicalOpKind::kAggregate:
      return "Aggregate";
    case LogicalOpKind::kUnion:
      return "Union";
    case LogicalOpKind::kExcept:
      return "Except";
  }
  return "?";
}

namespace {

std::shared_ptr<LogicalOperator> NewOp(LogicalOpKind kind) {
  auto op = std::make_shared<LogicalOperator>();
  op->kind = kind;
  return op;
}

}  // namespace

LogicalOpPtr LogicalOperator::Scan(std::string table_name, std::string alias) {
  auto op = NewOp(LogicalOpKind::kScan);
  op->table_name = std::move(table_name);
  op->alias = std::move(alias);
  return op;
}

LogicalOpPtr LogicalOperator::Filter(LogicalOpPtr input, ExprPtr predicate) {
  auto op = NewOp(LogicalOpKind::kFilter);
  op->children = {std::move(input)};
  op->predicate = std::move(predicate);
  return op;
}

LogicalOpPtr LogicalOperator::Project(LogicalOpPtr input,
                                      std::vector<SelectItem> items) {
  auto op = NewOp(LogicalOpKind::kProject);
  op->children = {std::move(input)};
  op->items = std::move(items);
  return op;
}

LogicalOpPtr LogicalOperator::Join(LogicalOpPtr left, LogicalOpPtr right,
                                   ExprPtr condition) {
  auto op = NewOp(LogicalOpKind::kJoin);
  op->children = {std::move(left), std::move(right)};
  op->predicate = std::move(condition);
  return op;
}

LogicalOpPtr LogicalOperator::SemiJoin(LogicalOpPtr left, LogicalOpPtr right,
                                       ExprPtr operand) {
  auto op = NewOp(LogicalOpKind::kSemiJoin);
  op->children = {std::move(left), std::move(right)};
  op->predicate = std::move(operand);
  return op;
}

LogicalOpPtr LogicalOperator::OuterJoin(LogicalOpPtr left, LogicalOpPtr right,
                                        ExprPtr condition) {
  auto op = NewOp(LogicalOpKind::kOuterJoin);
  op->children = {std::move(left), std::move(right)};
  op->predicate = std::move(condition);
  return op;
}

LogicalOpPtr LogicalOperator::Sort(LogicalOpPtr input,
                                   std::vector<OrderItem> order) {
  auto op = NewOp(LogicalOpKind::kSort);
  op->children = {std::move(input)};
  op->order_by = std::move(order);
  return op;
}

LogicalOpPtr LogicalOperator::Distinct(LogicalOpPtr input) {
  auto op = NewOp(LogicalOpKind::kDistinct);
  op->children = {std::move(input)};
  return op;
}

LogicalOpPtr LogicalOperator::Aggregate(LogicalOpPtr input,
                                        std::vector<SelectItem> items,
                                        std::vector<ExprPtr> group_by) {
  auto op = NewOp(LogicalOpKind::kAggregate);
  op->children = {std::move(input)};
  op->items = std::move(items);
  op->group_by = std::move(group_by);
  return op;
}

LogicalOpPtr LogicalOperator::Union(LogicalOpPtr left, LogicalOpPtr right,
                                    bool all) {
  auto op = NewOp(LogicalOpKind::kUnion);
  op->children = {std::move(left), std::move(right)};
  op->all = all;
  return op;
}

LogicalOpPtr LogicalOperator::Except(LogicalOpPtr left, LogicalOpPtr right,
                                     bool all) {
  auto op = NewOp(LogicalOpKind::kExcept);
  op->children = {std::move(left), std::move(right)};
  op->all = all;
  return op;
}

void LogicalOperator::CollectScans(
    std::vector<std::pair<std::string, std::string>>* out) const {
  if (kind == LogicalOpKind::kScan) {
    out->emplace_back(alias, table_name);
    return;
  }
  for (const LogicalOpPtr& c : children) c->CollectScans(out);
}

std::string LogicalOperator::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + LogicalOpKindToString(kind);
  switch (kind) {
    case LogicalOpKind::kScan:
      out += " " + table_name;
      if (alias != table_name) out += " AS " + alias;
      break;
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kJoin:
    case LogicalOpKind::kSemiJoin:
    case LogicalOpKind::kOuterJoin:
      if (predicate) out += " [" + predicate->ToString() + "]";
      break;
    case LogicalOpKind::kProject:
    case LogicalOpKind::kAggregate: {
      out += " [";
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ", ";
        out += items[i].ToString();
      }
      out += "]";
      break;
    }
    case LogicalOpKind::kUnion:
    case LogicalOpKind::kExcept:
      if (all) out += " ALL";
      break;
    default:
      break;
  }
  out += "\n";
  for (const LogicalOpPtr& c : children) out += c->ToString(indent + 1);
  return out;
}

}  // namespace erq
