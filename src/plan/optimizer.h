#pragma once

#include <vector>

#include "common/statusor.h"
#include "catalog/catalog.h"
#include "plan/cost_model.h"
#include "plan/logical_plan.h"
#include "plan/physical_plan.h"
#include "plan/reuse_source.h"

namespace erq {

struct OptimizerOptions {
  bool enable_index_scan = true;
  bool enable_hash_join = true;
  /// Use sort-merge instead of hash for equi-joins (ablation/testing knob).
  bool prefer_merge_join = false;
  /// When non-null, the splice pass probes this store while building
  /// table-scan access paths and replaces covered scans with
  /// CachedResultScan nodes (borrowed; must outlive the optimizer). The
  /// splice fires only where the table-scan path would have been chosen —
  /// an index scan emits rows in index order, the cached rows in ascending
  /// row order, so splicing over an index-scan decision would change the
  /// byte-level output with reuse on vs. off.
  const ReuseSpliceSource* reuse_source = nullptr;
};

/// Translates logical plans into executable physical plans:
///  * single-table conjuncts become index scans (when a matching index and
///    a sargable interval predicate exist) or explicit Filter nodes above
///    table scans — operator granularity matters because Operation O2
///    locates the lowest-level *operator* whose output is empty;
///  * join order is chosen greedily by estimated output cardinality,
///    preferring connected (predicate-linked) pairs over cross products;
///  * equi-joins run as hash joins (or merge joins when configured),
///    everything else as nested loops;
///  * every node carries estimated rows and cumulative estimated cost; the
///    root's estimated_cost is the optimizer's cost(Q) used by the C_cost
///    gate of §2.2.
class Optimizer {
 public:
  Optimizer(Catalog* catalog, const StatsCatalog* stats,
            OptimizerOptions options = {})
      : catalog_(catalog), stats_(stats), cost_model_(stats),
        options_(options) {}

  StatusOr<PhysOpPtr> Optimize(const LogicalOpPtr& logical) const;

  const CostModel& cost_model() const { return cost_model_; }

 private:
  struct SpjContext;

  StatusOr<PhysOpPtr> OptimizeNode(const LogicalOpPtr& node) const;
  StatusOr<PhysOpPtr> OptimizeSpj(const LogicalOpPtr& root) const;
  StatusOr<PhysOpPtr> BuildAccessPath(const std::string& alias,
                                      const std::string& table_name,
                                      std::vector<ExprPtr> conjuncts,
                                      const AliasMap& aliases) const;

  Catalog* catalog_;
  const StatsCatalog* stats_;
  CostModel cost_model_;
  OptimizerOptions options_;
};

/// Splits a predicate into its top-level AND conjuncts.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred);

}  // namespace erq

