#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/index.h"
#include "plan/binder.h"
#include "sql/ast.h"

namespace erq {

/// Physical operator vocabulary — the operators whose output cardinalities
/// the executor records (the paper's Operations O1/O2 consume exactly
/// this: "the RDBMS can only obtain output cardinalities of physical
/// operators in physical query plans").
enum class PhysOpKind {
  kTableScan,
  kIndexScan,   // range access via a SortedIndex + optional residual filter
  kFilter,
  kProject,
  kNestedLoopsJoin,
  kHashJoin,
  kMergeJoin,   // sorts its inputs, then merges (sort-merge join)
  kSemiJoin,    // hash semi join: left rows whose key appears in the right
                // child's single output column (IN-subquery rewrites)
  kLeftOuterJoin,
  kSort,
  kDistinct,
  kAggregate,
  kUnion,
  kExcept,
};

const char* PhysOpKindToString(PhysOpKind kind);

struct PhysicalOperator;
using PhysOpPtr = std::shared_ptr<PhysicalOperator>;

/// A mutable physical plan node. Expressions are slot-bound against the
/// child layouts noted per field. `actual_rows` is -1 until the executor
/// has run the node; afterwards it holds the observed output cardinality
/// (the statistic Operation O2 uses to find lowest-level empty parts).
struct PhysicalOperator {
  PhysOpKind kind;
  std::vector<PhysOpPtr> children;
  Layout layout;  // output layout

  // kTableScan / kIndexScan
  const Table* table = nullptr;
  std::string table_name;
  std::string alias;

  // kIndexScan
  SortedIndex* index = nullptr;
  std::string index_column;     // column the index covers
  Bound index_lo = Bound::Unbounded();
  Bound index_hi = Bound::Unbounded();
  ExprPtr index_condition;      // the predicate the bounds implement
                                // (bound to the scan layout), used by T3

  // kFilter (bound to child layout); kIndexScan residual filter.
  ExprPtr predicate;

  // Joins: equi-join keys bound to the respective child layouts.
  std::vector<ExprPtr> left_keys;
  std::vector<ExprPtr> right_keys;
  /// Full join condition bound to the concatenated output layout
  /// (NL join and outer join evaluate this; hash/merge joins evaluate
  /// keys plus this residual). Null means cross product / no residual.
  ExprPtr join_condition;

  // kProject / kAggregate (exprs bound to child layout).
  std::vector<SelectItem> items;
  std::vector<ExprPtr> group_by;

  // kSort (exprs bound to child layout).
  std::vector<OrderItem> order_by;

  // kUnion / kExcept
  bool all = false;

  // Optimizer estimates and executor observations.
  double estimated_rows = 0.0;
  double estimated_cost = 0.0;
  int64_t actual_rows = -1;

  /// Resets actual_rows to -1 in the whole subtree (before re-execution).
  void ResetActuals();

  /// Plan display with estimated and (when present) actual cardinalities —
  /// what Operation O1 shows the user.
  std::string ToString(int indent = 0) const;

  static PhysOpPtr Make(PhysOpKind kind) {
    auto op = std::make_shared<PhysicalOperator>();
    op->kind = kind;
    return op;
  }
};

}  // namespace erq

