#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/index.h"
#include "expr/primitive.h"
#include "plan/binder.h"
#include "sql/ast.h"

namespace erq {

/// Physical operator vocabulary — the operators whose output cardinalities
/// the executor records (the paper's Operations O1/O2 consume exactly
/// this: "the RDBMS can only obtain output cardinalities of physical
/// operators in physical query plans").
enum class PhysOpKind {
  kTableScan,
  kIndexScan,   // range access via a SortedIndex + optional residual filter
  kCachedResultScan,  // emits the materialized rows of a reuse-store
                      // intermediate (sigma_stored(table), ascending row
                      // order) instead of re-scanning the base table
  kFilter,
  kProject,
  kNestedLoopsJoin,
  kHashJoin,
  kMergeJoin,   // sorts its inputs, then merges (sort-merge join)
  kSemiJoin,    // hash semi join: left rows whose key appears in the right
                // child's single output column (IN-subquery rewrites)
  kLeftOuterJoin,
  kSort,
  kDistinct,
  kAggregate,
  kUnion,
  kExcept,
};

const char* PhysOpKindToString(PhysOpKind kind);

struct PhysicalOperator;
using PhysOpPtr = std::shared_ptr<PhysicalOperator>;

/// Per-partition observation of one executed partitioned scan: how many
/// rows the partition contributed and how many satisfied the scan
/// condition. `matches == 0` on a scanned partition is ground truth the
/// detector records as a partition-tagged atomic query part.
struct PartitionScanStat {
  size_t partition = 0;  ///< partition id within the table's scheme
  size_t rows = 0;       ///< rows scanned from the partition
  size_t matches = 0;    ///< rows satisfying the scan condition
};

/// A mutable physical plan node. Expressions are slot-bound against the
/// child layouts noted per field. `actual_rows` is -1 until the executor
/// has run the node; afterwards it holds the observed output cardinality
/// (the statistic Operation O2 uses to find lowest-level empty parts).
struct PhysicalOperator {
  PhysOpKind kind;
  std::vector<PhysOpPtr> children;
  Layout layout;  // output layout

  // kTableScan / kIndexScan / kCachedResultScan
  const Table* table = nullptr;
  std::string table_name;
  std::string alias;

  // kCachedResultScan: the reuse-store rows this scan emits (scan layout,
  // ascending row order; shared with the store so eviction cannot free
  // them mid-run) and the id of the entry they came from. The stored
  // entry's condition is carried in `scan_condition` for display — the
  // node's output is sigma_{scan_condition}(table), NOT the bare table,
  // which is why a zero-row cached scan is only *conditionally* empty
  // (see core/decompose.cc).
  std::shared_ptr<const std::vector<Row>> cached_rows;
  uint64_t reuse_entry_id = 0;

  // kIndexScan
  SortedIndex* index = nullptr;
  std::string index_column;     // column the index covers
  Bound index_lo = Bound::Unbounded();
  Bound index_hi = Bound::Unbounded();
  ExprPtr index_condition;      // the predicate the bounds implement
                                // (bound to the scan layout), used by T3

  // kFilter (bound to child layout); kIndexScan residual filter.
  ExprPtr predicate;

  // Joins: equi-join keys bound to the respective child layouts.
  std::vector<ExprPtr> left_keys;
  std::vector<ExprPtr> right_keys;
  /// Full join condition bound to the concatenated output layout
  /// (NL join and outer join evaluate this; hash/merge joins evaluate
  /// keys plus this residual). Null means cross product / no residual.
  ExprPtr join_condition;

  // kProject / kAggregate (exprs bound to child layout).
  std::vector<SelectItem> items;
  std::vector<ExprPtr> group_by;

  // kSort (exprs bound to child layout).
  std::vector<OrderItem> order_by;

  // kUnion / kExcept
  bool all = false;

  // kTableScan over a partitioned table: the conjunction of sargable
  // single-table conjuncts (canonical qualifiers), used to refute
  // partitions via zone maps and C_aqp partition-tagged knowledge. A
  // *weaker* condition than the full local predicate — every emitted row
  // still passes the Filter above — so pruning against it is sound.
  // kCachedResultScan: the stored entry's condition (what the cached rows
  // are a selection by), display/diagnostic only.
  Conjunction scan_condition;
  bool has_scan_condition = false;
  /// scan_condition as an executable predicate bound to the scan layout;
  /// evaluated per row to count per-partition matches (null = count rows).
  ExprPtr partition_probe;

  // Optimizer estimates and executor observations.
  double estimated_rows = 0.0;
  double estimated_cost = 0.0;
  int64_t actual_rows = -1;
  // Partitioned-scan observations (-1 until the scan ran partitioned).
  int64_t partitions_scanned = -1;
  int64_t partitions_pruned = -1;
  std::vector<PartitionScanStat> partition_stats;

  /// Resets actual_rows to -1 in the whole subtree (before re-execution).
  void ResetActuals();

  /// Plan display with estimated and (when present) actual cardinalities —
  /// what Operation O1 shows the user.
  std::string ToString(int indent = 0) const;

  static PhysOpPtr Make(PhysOpKind kind) {
    auto op = std::make_shared<PhysicalOperator>();
    op->kind = kind;
    return op;
  }
};

}  // namespace erq

