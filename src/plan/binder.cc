#include "plan/binder.h"

#include "common/string_util.h"

namespace erq {

Layout Layout::Concat(const Layout& left, const Layout& right) {
  std::vector<BoundColumn> columns = left.columns_;
  columns.insert(columns.end(), right.columns_.begin(), right.columns_.end());
  return Layout(std::move(columns));
}

namespace {

int FindColumn(const std::vector<BoundColumn>& columns,
               const std::string& qualifier, const std::string& column,
               bool* ambiguous) {
  int found = -1;
  *ambiguous = false;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (!EqualsIgnoreCase(columns[i].column, column)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(columns[i].alias, qualifier)) {
      continue;
    }
    if (found >= 0) {
      *ambiguous = true;
      return -1;
    }
    found = static_cast<int>(i);
  }
  return found;
}

}  // namespace

StatusOr<int> Layout::Resolve(const std::string& qualifier,
                              const std::string& column) const {
  bool ambiguous = false;
  int found = FindColumn(columns_, qualifier, column, &ambiguous);
  if (found < 0 && !ambiguous && !qualifier.empty()) {
    // Fallback for derived layouts that lost their qualifiers (aggregate /
    // projection outputs).
    found = FindColumn(columns_, "", column, &ambiguous);
  }
  if (ambiguous) {
    return Status::BindError("ambiguous column reference '" +
                             (qualifier.empty() ? column
                                                : qualifier + "." + column) +
                             "'");
  }
  if (found < 0) {
    return Status::BindError("unknown column '" +
                             (qualifier.empty() ? column
                                                : qualifier + "." + column) +
                             "'");
  }
  return found;
}

std::string Layout::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].alias + "." + columns_[i].column;
  }
  return out;
}

Layout ScanLayout(const Table& table, const std::string& alias) {
  Layout layout;
  for (const Column& c : table.schema().columns()) {
    layout.Add(BoundColumn{alias, c.name, c.type});
  }
  return layout;
}

namespace {

/// Static type of a bound scalar expression where determinable.
std::optional<DataType> StaticType(const Expr& e, const Layout& layout) {
  switch (e.kind()) {
    case Expr::Kind::kColumnRef:
      if (e.slot() >= 0 && static_cast<size_t>(e.slot()) < layout.size()) {
        return layout.column(static_cast<size_t>(e.slot())).type;
      }
      return std::nullopt;
    case Expr::Kind::kLiteral:
      if (e.value().is_null()) return std::nullopt;
      return e.value().type();
    case Expr::Kind::kArith: {
      auto l = StaticType(*e.child(0), layout);
      auto r = StaticType(*e.child(1), layout);
      if (!l || !r) return std::nullopt;
      if (*l == DataType::kDate || *r == DataType::kDate) {
        return DataType::kDate;  // date +/- int
      }
      if (*l == DataType::kDouble || *r == DataType::kDouble) {
        return DataType::kDouble;
      }
      return DataType::kInt64;
    }
    default:
      return std::nullopt;
  }
}

Status CheckComparable(const Expr& parent, const Expr& a, const Expr& b,
                       const Layout& layout) {
  auto ta = StaticType(a, layout);
  auto tb = StaticType(b, layout);
  if (ta && tb && !TypesComparable(*ta, *tb)) {
    return Status::BindError("cannot compare " +
                             std::string(DataTypeToString(*ta)) + " with " +
                             DataTypeToString(*tb) + " in " +
                             parent.ToString());
  }
  return Status::OK();
}

}  // namespace

StatusOr<ExprPtr> BindExpr(const ExprPtr& expr, const Layout& layout) {
  if (expr->kind() == Expr::Kind::kColumnRef) {
    ERQ_ASSIGN_OR_RETURN(int slot,
                         layout.Resolve(expr->qualifier(), expr->column()));
    const BoundColumn& col = layout.column(static_cast<size_t>(slot));
    return Expr::MakeBoundColumnRef(col.alias, expr->column(), slot);
  }
  std::vector<ExprPtr> children;
  children.reserve(expr->children().size());
  for (const ExprPtr& c : expr->children()) {
    ERQ_ASSIGN_OR_RETURN(ExprPtr bc, BindExpr(c, layout));
    children.push_back(std::move(bc));
  }
  ExprPtr bound = expr->children().empty() ? expr
                                           : expr->WithChildren(children);
  // Static comparability checks.
  switch (bound->kind()) {
    case Expr::Kind::kCompare:
      ERQ_RETURN_IF_ERROR(
          CheckComparable(*bound, *bound->child(0), *bound->child(1), layout));
      break;
    case Expr::Kind::kBetween:
      ERQ_RETURN_IF_ERROR(
          CheckComparable(*bound, *bound->child(0), *bound->child(1), layout));
      ERQ_RETURN_IF_ERROR(
          CheckComparable(*bound, *bound->child(0), *bound->child(2), layout));
      break;
    case Expr::Kind::kInList:
      for (size_t i = 1; i < bound->children().size(); ++i) {
        ERQ_RETURN_IF_ERROR(CheckComparable(*bound, *bound->child(0),
                                            *bound->child(i), layout));
      }
      break;
    default:
      break;
  }
  return bound;
}

Status FromScope::Add(const Catalog& catalog, const TableRef& ref) {
  ERQ_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(ref.table_name));
  std::string alias_key = ToLower(ref.alias);
  if (by_alias_.count(alias_key) > 0) {
    return Status::BindError("duplicate alias '" + ref.alias +
                             "' in FROM clause");
  }
  tables_.push_back(ref);
  by_alias_.emplace(std::move(alias_key), table);
  return Status::OK();
}

const Table* FromScope::TableForAlias(const std::string& alias) const {
  auto it = by_alias_.find(ToLower(alias));
  return it == by_alias_.end() ? nullptr : it->second;
}

bool FromScope::HasAlias(const std::string& alias) const {
  return by_alias_.count(ToLower(alias)) > 0;
}

std::unordered_map<std::string, std::string> FromScope::CanonicalRelationMap()
    const {
  std::unordered_map<std::string, std::string> out;
  std::unordered_map<std::string, int> occurrence;
  for (const TableRef& ref : tables_) {
    std::string table = ToLower(ref.table_name);
    int n = ++occurrence[table];
    std::string canonical =
        n == 1 ? table : table + "#" + std::to_string(n);
    out[ToLower(ref.alias)] = std::move(canonical);
  }
  return out;
}

}  // namespace erq
