#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "expr/expr.h"
#include "stats/analyzer.h"

namespace erq {

/// alias (lowercased) -> base table name, for statistics lookups against
/// qualified column references.
using AliasMap = std::unordered_map<std::string, std::string>;

/// Selectivity and cost estimation in abstract cost units (1 unit ~ one
/// sequential tuple visit). Deliberately simple, but monotone in data size
/// and selectivity, which is all the `C_cost` gate (§2.2) and the physical
/// optimizer need.
class CostModel {
 public:
  explicit CostModel(const StatsCatalog* stats) : stats_(stats) {}

  // --- Selectivity ---

  /// Estimated fraction of rows satisfying `pred` (qualified column refs).
  double EstimateSelectivity(const Expr& pred, const AliasMap& aliases) const;

  /// Selectivity of an equi-join between the two columns (1 / max NDV).
  double JoinSelectivity(const std::string& left_alias,
                         const std::string& left_column,
                         const std::string& right_alias,
                         const std::string& right_column,
                         const AliasMap& aliases) const;

  // --- Operator costs (per-operator, excluding children) ---

  double TableScanCost(double rows) const { return rows * kSeqTupleCost; }
  double IndexScanCost(double table_rows, double matching_rows) const;
  double FilterCost(double input_rows) const {
    return input_rows * kPredicateCost;
  }
  double ProjectCost(double input_rows) const {
    return input_rows * kProjectCost;
  }
  double HashJoinCost(double left_rows, double right_rows) const;
  double MergeJoinCost(double left_rows, double right_rows) const;
  double NestedLoopsJoinCost(double left_rows, double right_rows) const;
  double SortCost(double rows) const;
  double DistinctCost(double rows) const { return rows * kHashTupleCost; }
  double AggregateCost(double rows) const { return rows * kHashTupleCost; }

  const StatsCatalog* stats() const { return stats_; }

  static constexpr double kSeqTupleCost = 1.0;
  static constexpr double kPredicateCost = 0.2;
  static constexpr double kProjectCost = 0.1;
  static constexpr double kIndexLookupCost = 12.0;
  static constexpr double kIndexTupleCost = 2.0;
  static constexpr double kHashTupleCost = 1.5;
  static constexpr double kMergeTupleCost = 1.2;
  static constexpr double kNlTupleCost = 0.5;
  static constexpr double kDefaultSelectivity = 0.33;
  static constexpr double kDefaultEqSelectivity = 0.05;

 private:
  std::shared_ptr<const ColumnStats> LookupStats(const Expr& column_ref,
                                 const AliasMap& aliases) const;

  const StatsCatalog* stats_;
};

}  // namespace erq

