#pragma once

/// \file
/// Append-only journal of cache mutations (`journal.erq`). Each append
/// is one framed record (persist/record.h); a configurable fsync policy
/// bounds how much acknowledged data a real power loss could lose.
/// Recovery scans the journal and truncates the torn tail at the first
/// invalid record instead of failing (DESIGN.md §7).

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/io.h"
#include "persist/options.h"
#include "persist/record.h"

namespace erq {

/// File name of the journal inside the persist directory.
inline constexpr char kJournalFileName[] = "journal.erq";

/// Header payload identifying a journal file and its format version.
inline constexpr char kJournalHeaderPayload[] = "erq-journal-v1";

/// Writer half of the journal. Not thread-safe; the owning Persistence
/// object serializes access. Appends update `erq.persist.journal_appends`
/// / `erq.persist.fsyncs` / `erq.persist.journal_bytes`.
class JournalWriter {
 public:
  /// Opens `dir`/journal.erq. `truncate` starts a fresh journal (writing
  /// a new header record); otherwise appends after existing content —
  /// the caller must have truncated any torn tail first, and a header is
  /// written only when the file is empty.
  ERQ_NODISCARD Status Open(const std::string& dir, bool truncate,
              const PersistOptions& options);

  /// Appends one framed record and applies the fsync policy. On error
  /// the journal must be considered broken (the caller stops journaling;
  /// the on-disk prefix up to the last good record remains recoverable).
  ERQ_NODISCARD Status Append(RecordType type, std::string_view payload);

  /// Forces an fsync of everything appended so far.
  ERQ_NODISCARD Status Sync();

  /// Closes the file without syncing.
  void Close();

  /// True while the journal file is open.
  bool is_open() const { return file_.is_open(); }

  /// Current journal file size in bytes (drives snapshot rotation).
  uint64_t size_bytes() const { return file_.size_bytes(); }

  /// Records appended through this writer since Open.
  uint64_t appended_records() const { return appended_records_; }

 private:
  ERQ_NODISCARD Status MaybeSyncAfterAppend();

  AppendFile file_;
  PersistOptions options_;
  uint64_t appends_since_sync_ = 0;
  /// steady-clock nanos of the last applied fsync (interval policy).
  int64_t last_sync_nanos_ = 0;
  uint64_t appended_records_ = 0;
};

/// Result of scanning a journal file during recovery.
struct JournalScan {
  /// All valid records in file order, including the header.
  std::vector<Record> records;
  /// Bytes of the valid prefix (truncation target when a tail is torn).
  uint64_t valid_bytes = 0;
  /// Bytes past the valid prefix (0 for a clean file).
  uint64_t truncated_bytes = 0;
  /// True when the file does not exist at all.
  bool missing = false;
};

/// Reads `dir`/journal.erq, validating record-by-record and stopping at
/// the first torn/invalid record. Never fails on torn data — the scan
/// reports where the valid prefix ends; the caller truncates. Fails only
/// on real IO errors or a file whose very first record is not a valid
/// journal header.
ERQ_NODISCARD StatusOr<JournalScan> ScanJournal(const std::string& dir);

}  // namespace erq
