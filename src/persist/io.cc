#include "persist/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "persist/failpoint.h"

namespace erq {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " " + path + ": " + std::strerror(errno));
}

Status Crash(const std::string& seam) {
  return Status::IoError("simulated crash at " + seam);
}

// Writes all of `data` to `fd`, retrying short writes and EINTR.
Status WriteFully(int fd, const char* data, size_t size,
                  const std::string& path) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

AppendFile::~AppendFile() { Close(); }

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_),
      size_bytes_(other.size_bytes_),
      path_(std::move(other.path_)),
      seam_prefix_(std::move(other.seam_prefix_)) {
  other.fd_ = -1;
  other.size_bytes_ = 0;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    size_bytes_ = other.size_bytes_;
    path_ = std::move(other.path_);
    seam_prefix_ = std::move(other.seam_prefix_);
    other.fd_ = -1;
    other.size_bytes_ = 0;
  }
  return *this;
}

Status AppendFile::Open(const std::string& path, bool truncate,
                        std::string seam_prefix) {
  Close();
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    return Errno("fstat", path);
  }
  fd_ = fd;
  size_bytes_ = static_cast<uint64_t>(st.st_size);
  path_ = path;
  seam_prefix_ = std::move(seam_prefix);
  return Status::OK();
}

Status AppendFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::Internal("append on closed file " + path_);
  if (FailPointShouldFail(seam_prefix_ + ".before")) {
    return Crash(seam_prefix_ + ".before");
  }
  if (FailPointShouldFail(seam_prefix_ + ".torn")) {
    // Simulate a torn write: half the bytes reach the file, then the
    // process dies.
    size_t half = data.size() / 2;
    if (half > 0) {
      Status s = WriteFully(fd_, data.data(), half, path_);
      if (s.ok()) size_bytes_ += half;
    }
    return Crash(seam_prefix_ + ".torn");
  }
  ERQ_RETURN_IF_ERROR(WriteFully(fd_, data.data(), data.size(), path_));
  size_bytes_ += data.size();
  if (FailPointShouldFail(seam_prefix_ + ".after")) {
    return Crash(seam_prefix_ + ".after");
  }
  return Status::OK();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status::Internal("sync on closed file " + path_);
  if (FailPointShouldFail(seam_prefix_ + ".sync")) {
    return Crash(seam_prefix_ + ".sync");
  }
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

void AppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      errno = saved;
      return Errno("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status CreateDirIfMissing(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return Status::OK();
  if (errno == EEXIST) {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return Status::OK();
    }
    return Status::IoError("not a directory: " + path);
  }
  return Errno("mkdir", path);
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir", dir);
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved;
    return Errno("fsync dir", dir);
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       const std::string& seam_prefix) {
  const std::string tmp = path + ".tmp";
  if (FailPointShouldFail(seam_prefix + ".write")) {
    // Simulate dying mid-write of the temp file: leave a truncated tmp
    // behind; `path` itself is untouched.
    AppendFile f;
    Status s = f.Open(tmp, /*truncate=*/true, seam_prefix + ".noop");
    if (s.ok()) {
      (void)f.Append(contents.substr(0, contents.size() / 2));
    }
    return Crash(seam_prefix + ".write");
  }
  {
    AppendFile f;
    ERQ_RETURN_IF_ERROR(f.Open(tmp, /*truncate=*/true, seam_prefix + ".tmp"));
    ERQ_RETURN_IF_ERROR(f.Append(contents));
    if (FailPointShouldFail(seam_prefix + ".sync")) {
      return Crash(seam_prefix + ".sync");
    }
    ERQ_RETURN_IF_ERROR(f.Sync());
  }
  if (FailPointShouldFail(seam_prefix + ".rename")) {
    return Crash(seam_prefix + ".rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) return Errno("rename", tmp);
  if (FailPointShouldFail(seam_prefix + ".dirsync")) {
    return Crash(seam_prefix + ".dirsync");
  }
  std::string dir = ".";
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  return SyncDir(dir);
}

Status TruncateFileTo(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved;
    return Errno("fsync", path);
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return Errno("unlink", path);
}

}  // namespace erq
