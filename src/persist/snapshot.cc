#include "persist/snapshot.h"

#include <charconv>

#include "persist/io.h"

namespace erq {

namespace {

std::string SnapshotPath(const std::string& dir) {
  return dir + "/" + kSnapshotFileName;
}

bool ParseFooterCount(const std::string& s, uint64_t* out) {
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc() && ptr == end && !s.empty();
}

}  // namespace

Status WriteSnapshot(const std::string& dir,
                     const std::vector<Record>& body) {
  std::string blob;
  AppendRecord(RecordType::kFileHeader, kSnapshotHeaderPayload, &blob);
  for (const Record& rec : body) {
    AppendRecord(rec.type, rec.payload, &blob);
  }
  AppendRecord(RecordType::kSnapshotFooter, std::to_string(body.size()),
               &blob);
  return WriteFileAtomic(SnapshotPath(dir), blob, "persist.snapshot");
}

StatusOr<SnapshotScan> ReadSnapshot(const std::string& dir) {
  SnapshotScan scan;
  const std::string path = SnapshotPath(dir);
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) {
    if (contents.status().code() == StatusCode::kNotFound) {
      scan.missing = true;
      return scan;
    }
    return contents.status();
  }
  const std::string& data = contents.value();
  size_t offset = 0;
  Record rec;
  bool saw_header = false;
  bool saw_footer = false;
  for (;;) {
    RecordParse r = ParseRecord(data, &offset, &rec);
    if (r == RecordParse::kEof) break;
    if (r == RecordParse::kTorn) {
      return Status::IoError("corrupt snapshot (bad record at offset " +
                             std::to_string(offset) + "): " + path);
    }
    if (saw_footer) {
      return Status::IoError("corrupt snapshot (data after footer): " +
                             path);
    }
    if (!saw_header) {
      if (rec.type != RecordType::kFileHeader ||
          rec.payload != kSnapshotHeaderPayload) {
        return Status::IoError("not a snapshot file: " + path);
      }
      saw_header = true;
      continue;
    }
    if (rec.type == RecordType::kSnapshotFooter) {
      uint64_t declared = 0;
      if (!ParseFooterCount(rec.payload, &declared) ||
          declared != scan.records.size()) {
        return Status::IoError("corrupt snapshot (footer count mismatch): " +
                               path);
      }
      saw_footer = true;
      continue;
    }
    scan.records.push_back(std::move(rec));
  }
  if (!saw_header || !saw_footer) {
    return Status::IoError("corrupt snapshot (missing header/footer): " +
                           path);
  }
  return scan;
}

}  // namespace erq
