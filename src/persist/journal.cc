#include "persist/journal.h"

#include <chrono>

#include "common/metrics.h"

namespace erq {

namespace {

/// Instruments owned by the journal. `journal_bytes` is a gauge of the
/// current file size; the counters are process-lifetime totals.
struct JournalMetrics {
  Counter* journal_appends;
  Counter* fsyncs;
  Gauge* journal_bytes;

  static const JournalMetrics& Get() {
    static const JournalMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return JournalMetrics{
          r.GetCounter("erq.persist.journal_appends"),
          r.GetCounter("erq.persist.fsyncs"),
          r.GetGauge("erq.persist.journal_bytes"),
      };
    }();
    return m;
  }
};

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JournalPath(const std::string& dir) {
  return dir + "/" + kJournalFileName;
}

}  // namespace

Status JournalWriter::Open(const std::string& dir, bool truncate,
                           const PersistOptions& options) {
  options_ = options;
  appends_since_sync_ = 0;
  appended_records_ = 0;
  last_sync_nanos_ = SteadyNowNanos();
  ERQ_RETURN_IF_ERROR(
      file_.Open(JournalPath(dir), truncate, "persist.journal.append"));
  if (file_.size_bytes() == 0) {
    std::string header;
    AppendRecord(RecordType::kFileHeader, kJournalHeaderPayload, &header);
    ERQ_RETURN_IF_ERROR(file_.Append(header));
    ERQ_RETURN_IF_ERROR(file_.Sync());
    JournalMetrics::Get().fsyncs->Increment();
  }
  JournalMetrics::Get().journal_bytes->Set(
      static_cast<int64_t>(file_.size_bytes()));
  return Status::OK();
}

Status JournalWriter::Append(RecordType type, std::string_view payload) {
  std::string framed;
  AppendRecord(type, payload, &framed);
  ERQ_RETURN_IF_ERROR(file_.Append(framed));
  ++appended_records_;
  ++appends_since_sync_;
  const JournalMetrics& m = JournalMetrics::Get();
  m.journal_appends->Increment();
  m.journal_bytes->Set(static_cast<int64_t>(file_.size_bytes()));
  return MaybeSyncAfterAppend();
}

Status JournalWriter::MaybeSyncAfterAppend() {
  bool want_sync = false;
  if (options_.fsync_every_n > 0 &&
      appends_since_sync_ >= options_.fsync_every_n) {
    want_sync = true;
  }
  if (!want_sync && options_.fsync_interval_ms > 0) {
    const int64_t elapsed_ms =
        (SteadyNowNanos() - last_sync_nanos_) / 1000000;
    if (elapsed_ms >= options_.fsync_interval_ms) want_sync = true;
  }
  if (!want_sync) return Status::OK();
  return Sync();
}

Status JournalWriter::Sync() {
  ERQ_RETURN_IF_ERROR(file_.Sync());
  appends_since_sync_ = 0;
  last_sync_nanos_ = SteadyNowNanos();
  JournalMetrics::Get().fsyncs->Increment();
  return Status::OK();
}

void JournalWriter::Close() { file_.Close(); }

StatusOr<JournalScan> ScanJournal(const std::string& dir) {
  JournalScan scan;
  const std::string path = JournalPath(dir);
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) {
    if (contents.status().code() == StatusCode::kNotFound) {
      scan.missing = true;
      return scan;
    }
    return contents.status();
  }
  const std::string& data = contents.value();
  size_t offset = 0;
  Record rec;
  for (;;) {
    RecordParse r = ParseRecord(data, &offset, &rec);
    if (r == RecordParse::kEof) break;
    if (r == RecordParse::kTorn) {
      scan.truncated_bytes = data.size() - offset;
      break;
    }
    if (scan.records.empty()) {
      // The first valid record of a journal must be its header; a valid
      // record of any other kind means this is not a journal file.
      if (rec.type != RecordType::kFileHeader ||
          rec.payload != kJournalHeaderPayload) {
        return Status::IoError("not a journal file: " + path);
      }
    }
    scan.records.push_back(std::move(rec));
    scan.valid_bytes = offset;
  }
  return scan;
}

}  // namespace erq
