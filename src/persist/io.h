#pragma once

/// \file
/// Thin POSIX file-IO primitives for the persistence layer: an
/// append-only file handle, whole-file reads, atomic replace-by-rename,
/// and tail truncation. Every write boundary passes through a named
/// `erq::FailPoint` seam so tests can simulate a crash at each one
/// (DESIGN.md §7).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/statusor.h"

namespace erq {

/// An append-only file descriptor wrapper. Move-only; the destructor
/// closes (without syncing). All methods consult the failpoint seams
/// `<seam_prefix>.before`, `<seam_prefix>.torn`, `<seam_prefix>.after`
/// (Append) and `<seam_prefix>.sync` (Sync), where `seam_prefix` is the
/// value passed to Open.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens `path` for appending, creating it if missing; `truncate`
  /// discards existing content. `seam_prefix` names this file's
  /// failpoint boundaries (e.g. "persist.journal.append").
  ERQ_NODISCARD Status Open(const std::string& path, bool truncate,
              std::string seam_prefix);

  /// Appends `data` verbatim. A fired `.torn` seam writes only a prefix
  /// of `data` before failing — simulating a torn write.
  ERQ_NODISCARD Status Append(std::string_view data);

  /// fsync()s the descriptor.
  ERQ_NODISCARD Status Sync();

  /// Closes the descriptor (no sync). Safe to call twice.
  void Close();

  /// True while a descriptor is open.
  bool is_open() const { return fd_ >= 0; }

  /// Bytes successfully appended since Open (resumed from the existing
  /// file size when opened without `truncate`).
  uint64_t size_bytes() const { return size_bytes_; }

 private:
  int fd_ = -1;
  uint64_t size_bytes_ = 0;
  std::string path_;
  std::string seam_prefix_;
};

/// Reads all of `path`. NotFound if the file does not exist.
ERQ_NODISCARD StatusOr<std::string> ReadFileToString(const std::string& path);

/// True if `path` exists (any file type).
bool FileExists(const std::string& path);

/// Creates directory `path` if missing (single level, not mkdir -p).
ERQ_NODISCARD Status CreateDirIfMissing(const std::string& path);

/// fsync()s the directory containing `path`, making a rename within it
/// durable.
ERQ_NODISCARD Status SyncDir(const std::string& dir);

/// Atomically replaces `path` with `contents`: writes `path`.tmp, fsyncs
/// it, rename()s over `path`, then fsyncs the directory. Crash seams:
/// `<seam_prefix>.write`, `<seam_prefix>.sync`, `<seam_prefix>.rename`,
/// `<seam_prefix>.dirsync`. A crash at any seam leaves either the old
/// complete file or the new complete file at `path` — never a mix.
ERQ_NODISCARD Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       const std::string& seam_prefix);

/// Truncates `path` to `size` bytes and fsyncs it — used to drop a torn
/// journal tail during recovery.
ERQ_NODISCARD Status TruncateFileTo(const std::string& path, uint64_t size);

/// Removes `path` if it exists; OK when the file was already absent.
ERQ_NODISCARD Status RemoveFileIfExists(const std::string& path);

}  // namespace erq
