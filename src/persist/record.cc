#include "persist/record.h"

#include <cstring>

#include "persist/crc32.h"

namespace erq {

namespace {

// magic(4) + type(1) + payload_len(4).
constexpr size_t kFrameHeaderSize = 9;
constexpr size_t kCrcSize = 4;

void AppendU32Le(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFFu));
  out->push_back(static_cast<char>((v >> 8) & 0xFFu));
  out->push_back(static_cast<char>((v >> 16) & 0xFFu));
  out->push_back(static_cast<char>((v >> 24) & 0xFFu));
}

uint32_t ReadU32Le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

}  // namespace

bool IsKnownRecordType(uint8_t type) {
  return type >= static_cast<uint8_t>(RecordType::kFileHeader) &&
         type <= static_cast<uint8_t>(RecordType::kSnapshotFooter);
}

void AppendRecord(RecordType type, std::string_view payload,
                  std::string* out) {
  const size_t body_start = out->size() + sizeof(uint32_t);
  AppendU32Le(kRecordMagic, out);
  out->push_back(static_cast<char>(type));
  AppendU32Le(static_cast<uint32_t>(payload.size()), out);
  out->append(payload);
  const uint32_t crc =
      Crc32(out->data() + body_start, out->size() - body_start);
  AppendU32Le(crc, out);
}

RecordParse ParseRecord(std::string_view data, size_t* offset, Record* out) {
  const size_t pos = *offset;
  if (pos == data.size()) return RecordParse::kEof;
  if (data.size() - pos < kFrameHeaderSize + kCrcSize) {
    return RecordParse::kTorn;
  }
  if (ReadU32Le(data.data() + pos) != kRecordMagic) return RecordParse::kTorn;
  const uint8_t type = static_cast<uint8_t>(data[pos + 4]);
  const uint32_t payload_len = ReadU32Le(data.data() + pos + 5);
  const size_t remaining = data.size() - pos - kFrameHeaderSize;
  if (payload_len > remaining - kCrcSize) return RecordParse::kTorn;
  const char* body = data.data() + pos + sizeof(uint32_t);
  const size_t body_len = 1 + sizeof(uint32_t) + payload_len;
  const uint32_t stored_crc =
      ReadU32Le(data.data() + pos + kFrameHeaderSize + payload_len);
  if (Crc32(body, body_len) != stored_crc) return RecordParse::kTorn;
  if (!IsKnownRecordType(type)) return RecordParse::kTorn;
  out->type = static_cast<RecordType>(type);
  out->payload.assign(data.data() + pos + kFrameHeaderSize, payload_len);
  *offset = pos + kFrameHeaderSize + payload_len + kCrcSize;
  return RecordParse::kOk;
}

}  // namespace erq
