#pragma once

/// \file
/// Versioned binary record format shared by the C_aqp snapshot and
/// journal files. Every record is independently framed and CRC32-guarded
/// so a reader can always tell "valid record", "clean end of file", and
/// "torn tail" apart (DESIGN.md §7).
///
/// Wire layout (little-endian):
///
///   [u32 magic "1QRE"] [u8 type] [u32 payload_len] [payload bytes]
///   [u32 crc32 over type + payload_len + payload]
///
/// Payloads are strings: serialized atomic-query-part lines for C_aqp
/// records (core/serialize.h format) and raw fingerprints for the
/// MvEmptyCache records. The magic doubles as the format version — a
/// layout change bumps the last byte ("2QRE") and old readers stop at
/// the first new-format record instead of misparsing it.

#include <cstdint>
#include <string>
#include <string_view>

namespace erq {

/// Magic prefix of every framed record ("ERQ1" read as a little-endian
/// u32 — the bytes on disk spell E,R,Q,1).
constexpr uint32_t kRecordMagic = 0x31515245u;

/// Discriminator of a persisted record.
enum class RecordType : uint8_t {
  /// First record of every file; payload names the file kind and format
  /// ("erq-journal-v1" / "erq-snapshot-v1").
  kFileHeader = 1,
  /// An atomic query part entered C_aqp; payload = serialized part line.
  kCaqpInsert = 2,
  /// A stored part left C_aqp (eviction, displacement by a more general
  /// part, or invalidation); payload = serialized part line.
  kCaqpRemove = 3,
  /// C_aqp was cleared wholesale; empty payload.
  kCaqpClear = 4,
  /// A fingerprint entered the MV baseline cache; payload = fingerprint.
  kMvStore = 5,
  /// A fingerprint was evicted from the MV baseline cache.
  kMvRemove = 6,
  /// The MV baseline cache was cleared; empty payload.
  kMvClear = 7,
  /// Last record of a snapshot; payload = decimal count of body records,
  /// proving the snapshot was written to completion.
  kSnapshotFooter = 8,
};

/// True for type bytes this build knows how to replay.
bool IsKnownRecordType(uint8_t type);

/// One parsed record.
struct Record {
  /// Discriminator (always a known type after a successful parse).
  RecordType type = RecordType::kFileHeader;
  /// Raw payload bytes (meaning depends on `type`).
  std::string payload;
};

/// Appends the framed encoding of (`type`, `payload`) to `out`.
void AppendRecord(RecordType type, std::string_view payload,
                  std::string* out);

/// Outcome of parsing one record from a byte buffer.
enum class RecordParse {
  /// A valid record was parsed; `*offset` advanced past it.
  kOk,
  /// `*offset` is exactly the end of the buffer: clean EOF.
  kEof,
  /// The bytes at `*offset` are not a complete valid record (short
  /// header, bad magic, length past EOF, CRC mismatch, or an unknown
  /// type byte): the torn tail starts at `*offset`.
  kTorn,
};

/// Parses the record starting at `*offset` in `data`. On kOk fills
/// `*out` and advances `*offset`; on kEof/kTorn leaves both untouched.
RecordParse ParseRecord(std::string_view data, size_t* offset, Record* out);

}  // namespace erq
