#pragma once

/// \file
/// Point-in-time snapshot of the durable caches (`snapshot.erq`).
/// Snapshots are written whole and installed by atomic rename, so on
/// disk there is only ever a complete old snapshot or a complete new one
/// — a torn snapshot is a broken invariant, not an expected state, and
/// recovery treats it as corruption (DESIGN.md §7).

#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "persist/record.h"

namespace erq {

/// File name of the snapshot inside the persist directory.
inline constexpr char kSnapshotFileName[] = "snapshot.erq";

/// Header payload identifying a snapshot file and its format version.
inline constexpr char kSnapshotHeaderPayload[] = "erq-snapshot-v1";

/// Writes a snapshot containing `body` (insert/store records only) to
/// `dir`/snapshot.erq via write-temp + fsync + rename + dir-fsync. The
/// file is framed header + body + footer; the footer carries the body
/// record count so a reader can prove completeness.
ERQ_NODISCARD Status WriteSnapshot(const std::string& dir,
                     const std::vector<Record>& body);

/// Result of reading a snapshot during recovery.
struct SnapshotScan {
  /// Body records (header and footer stripped), in file order.
  std::vector<Record> records;
  /// True when no snapshot file exists (first start, or journal-only).
  bool missing = false;
};

/// Reads and validates `dir`/snapshot.erq. Unlike the journal, any
/// invalid byte is an error: atomic installation means a damaged
/// snapshot implies external corruption, which must not be silently
/// repaired.
ERQ_NODISCARD StatusOr<SnapshotScan> ReadSnapshot(const std::string& dir);

}  // namespace erq
