#pragma once

/// \file
/// Configuration for the durability subsystem (see DESIGN.md §7
/// "Persistence & recovery"). Lives in its own header so
/// core/config.h can embed it without pulling in any persistence
/// machinery.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace erq {

/// Tuning knobs of the crash-safe C_aqp persistence layer. Embedded in
/// EmptyResultConfig as `persist`; an empty `dir` disables persistence
/// entirely (the paper's in-memory-only behavior).
struct PersistOptions {
  /// Directory holding `snapshot.erq` and `journal.erq`. Created on
  /// first use if missing. Empty string = persistence disabled.
  std::string dir;

  /// Fsync the journal after every N appended records. 0 disables
  /// count-based fsync. The default (1) makes every acknowledged record
  /// durable — the strongest setting, and the one the fault-injection
  /// suite assumes when it speaks of "durably-acked" entries.
  size_t fsync_every_n = 1;

  /// Fsync the journal when more than this many milliseconds have passed
  /// since the last sync and unsynced records exist. Checked on each
  /// append (there is no background flusher thread; EmptyResultManager's
  /// destructor performs the final flush). 0 disables time-based fsync.
  /// With both knobs 0 the journal is never fsynced explicitly — the
  /// "off" policy: cheapest, loses the page-cache tail on power failure.
  int64_t fsync_interval_ms = 0;

  /// Rotate (write a fresh snapshot atomically and reset the journal)
  /// when the journal grows past this many bytes. Must be positive.
  size_t snapshot_journal_bytes = 4u << 20;

  /// True when persistence is configured (a directory was given).
  bool enabled() const { return !dir.empty(); }

  /// Rejects nonsensical settings (zero rotation threshold, negative
  /// fsync interval). Called from EmptyResultConfig::Validate().
  ERQ_NODISCARD Status Validate() const;
};

}  // namespace erq
