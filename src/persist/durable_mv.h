#pragma once

/// \file
/// Header-only glue making the MV-baseline cache durable through an
/// existing Persistence object. Kept out of the persist .cc files so the
/// persistence library has no link-time dependency on the mv module.

#include <string>

#include "mv/mv_cache.h"
#include "persist/persistence.h"

namespace erq {

/// RAII adapter: on construction restores the recovered fingerprints into
/// `cache` (oldest first, rebuilding LRU order) and starts journaling its
/// mutations; on destruction detaches. Construct after Persistence::Open
/// and destroy before the Persistence object; `cache` must outlive the
/// adapter.
class DurableMv : public MvEmptyCache::ChangeListener {
 public:
  DurableMv(Persistence* persistence, MvEmptyCache* cache)
      : persistence_(persistence), cache_(cache) {
    for (const std::string& fp : persistence_->recovered().mv_fingerprints) {
      cache_->RestoreFingerprint(fp);
    }
    // Re-base the durable mirror on what the cache actually kept (a
    // smaller max_views than the previous run's drops the oldest views).
    persistence_->InitMvMirror(cache_->Fingerprints());
    cache_->SetChangeListener(this);
  }

  ~DurableMv() override { cache_->SetChangeListener(nullptr); }

  DurableMv(const DurableMv&) = delete;
  DurableMv& operator=(const DurableMv&) = delete;

  /// MvEmptyCache::ChangeListener — runs under the cache mutex.
  void OnStore(const std::string& fp) override {
    persistence_->JournalMvStore(fp);
  }
  /// Journals an LRU eviction of `fp`.
  void OnEvict(const std::string& fp) override {
    persistence_->JournalMvRemove(fp);
  }
  /// Journals a wholesale clear.
  void OnClear() override { persistence_->JournalMvClear(); }

 private:
  Persistence* persistence_;
  MvEmptyCache* cache_;
};

}  // namespace erq
