#pragma once

/// \file
/// Crash-safe persistence for the empty-result caches: a snapshot plus an
/// append-only journal of every mutation, recovered on startup
/// (DESIGN.md §7). The `Persistence` object is the single owner of the
/// on-disk state; it observes cache mutations through the caches'
/// change-listener hooks and never calls back into a cache, so the lock
/// order is strictly cache-mutex → persistence-mutex.

#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/lock_order.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "core/caqp_cache.h"
#include "persist/journal.h"
#include "persist/options.h"
#include "persist/record.h"

namespace erq {

/// Durability engine for C_aqp (and, via DurableMv, the MV baseline
/// cache). Open() recovers the previous process's state from
/// `snapshot.erq` + `journal.erq`; AttachCaqp() loads that state into a
/// live cache and starts journaling its mutations.
///
/// Rotation: the object keeps an in-memory *mirror* of the durable state
/// (the serialized form of every live entry, maintained by the listener
/// callbacks). When the journal outgrows
/// PersistOptions::snapshot_journal_bytes, the mirror is written as a new
/// snapshot (atomic rename) and the journal is reset — all without
/// touching the caches, so rotation may run inside a listener callback.
///
/// IO errors are sticky: after the first failed write, journaling stops,
/// status() reports the error, and the caches keep serving from memory;
/// the on-disk state remains a valid (if stale) recovery point.
class Persistence : public CaqpCache::ChangeListener {
 public:
  /// What recovery reconstructed from disk.
  struct RecoveredState {
    /// C_aqp parts, in original insertion order.
    std::vector<AtomicQueryPart> parts;
    /// MV-baseline fingerprints, oldest first (LRU order rebuilds).
    std::vector<std::string> mv_fingerprints;
    /// Body records read from the snapshot.
    uint64_t snapshot_records = 0;
    /// Records replayed from the journal (header excluded).
    uint64_t journal_records = 0;
    /// Torn journal-tail bytes dropped by recovery.
    uint64_t truncated_bytes = 0;
    /// Wall-clock recovery time.
    double recovery_seconds = 0.0;
  };

  /// Creates the persist directory if needed, recovers state from the
  /// snapshot and journal (truncating a torn journal tail), and opens the
  /// journal for appending. Fails on real IO errors or a corrupt
  /// snapshot — never on a torn journal.
  ERQ_NODISCARD static StatusOr<std::unique_ptr<Persistence>> Open(
      const PersistOptions& options);

  /// Like Open(), but strictly read-only: reconstructs RecoveredState
  /// without creating the directory, truncating a torn tail (its size is
  /// still reported in recovered().truncated_bytes), opening the journal
  /// for appending, or touching the recovery metrics. For inspection
  /// tools (cache_inspect) that must never repair what they examine; the
  /// returned object must not be attached to a cache or journaled to.
  ERQ_NODISCARD static StatusOr<std::unique_ptr<Persistence>> OpenReadOnly(
      const PersistOptions& options);

  /// Detaches from the cache, flushes and closes the journal.
  ~Persistence() override;

  Persistence(const Persistence&) = delete;
  Persistence& operator=(const Persistence&) = delete;

  /// State reconstructed by Open(); fixed thereafter.
  const RecoveredState& recovered() const { return recovered_; }

  /// Loads the recovered parts into `cache`, starts journaling its
  /// mutations, and compacts (fresh snapshot + empty journal) so disk
  /// exactly matches the live cache. Call once, before `cache` is shared
  /// with other threads; `cache` must outlive this object.
  ERQ_NODISCARD Status AttachCaqp(CaqpCache* cache);

  /// Re-bases the MV half of the durable mirror on the fingerprints a
  /// live MvEmptyCache actually holds (oldest first). Called by DurableMv
  /// after restoring; pairs with the JournalMv* methods below.
  void InitMvMirror(const std::vector<std::string>& fps) ERQ_EXCLUDES(mu_);

  /// Journals an MV-baseline store (driven by DurableMv).
  void JournalMvStore(const std::string& fp) ERQ_EXCLUDES(mu_);
  /// Journals an MV-baseline eviction/removal (driven by DurableMv).
  void JournalMvRemove(const std::string& fp) ERQ_EXCLUDES(mu_);
  /// Journals an MV-baseline wholesale clear (driven by DurableMv).
  void JournalMvClear() ERQ_EXCLUDES(mu_);

  /// Forces an fsync of the journal (clean-shutdown flush).
  ERQ_NODISCARD Status Flush() ERQ_EXCLUDES(mu_);

  /// Forces a snapshot rotation now, regardless of journal size.
  ERQ_NODISCARD Status SnapshotNow() ERQ_EXCLUDES(mu_);

  /// OK until the first IO failure; then the sticky first error.
  ERQ_NODISCARD Status status() const ERQ_EXCLUDES(mu_);

  /// CaqpCache::ChangeListener — runs under the cache's exclusive lock.
  void OnInsert(const AtomicQueryPart& aqp) override;
  /// Journals a removal (eviction, displacement, or invalidation).
  void OnRemove(const AtomicQueryPart& aqp,
                CaqpCache::RemoveReason reason) override;
  /// Journals a wholesale clear of C_aqp.
  void OnClear() override;

 private:
  /// Insertion-ordered set of serialized entries (the durable mirror of
  /// one cache): a list for order plus an index for O(1) membership.
  struct Mirror {
    std::list<std::string> order;
    std::unordered_map<std::string, std::list<std::string>::iterator> index;

    bool Add(const std::string& key);
    bool Erase(const std::string& key);
    void Clear();
    size_t size() const { return order.size(); }
  };

  explicit Persistence(PersistOptions options);

  /// Shared body of Open() / OpenReadOnly().
  ERQ_NODISCARD static StatusOr<std::unique_ptr<Persistence>> OpenImpl(
      const PersistOptions& options, bool read_only);

  /// Replays snapshot + journal records into the mirrors and fills
  /// recovered_ (called once from Open).
  ERQ_NODISCARD Status RecoverLocked() ERQ_REQUIRES(mu_);

  /// Appends one record; on failure latches io_status_ and stops
  /// journaling.
  void AppendLocked(RecordType type, std::string_view payload)
      ERQ_REQUIRES(mu_);

  /// Writes the mirrors as a fresh snapshot and resets the journal.
  ERQ_NODISCARD Status RotateLocked() ERQ_REQUIRES(mu_);
  void MaybeRotateLocked() ERQ_REQUIRES(mu_);

  const PersistOptions options_;
  /// True for OpenReadOnly instances: no truncation, no journal writes.
  bool read_only_ = false;

  // Acquired under either cache's lock (listener callbacks) and held
  // across IO seams that consult FailPoint and register metrics, hence
  // the two ACQUIRED_BEFORE edges.
  mutable Mutex mu_ ERQ_ACQUIRED_AFTER(lock_order::kPersistence)
      ERQ_ACQUIRED_BEFORE(lock_order::kFailPoint,
                          lock_order::kMetrics){lock_order::kPersistence};
  JournalWriter journal_ ERQ_GUARDED_BY(mu_);
  Status io_status_ ERQ_GUARDED_BY(mu_);
  Mirror caqp_mirror_ ERQ_GUARDED_BY(mu_);
  Mirror mv_mirror_ ERQ_GUARDED_BY(mu_);

  /// Written once by Open before the object is shared.
  RecoveredState recovered_;
  /// The attached cache (detached in the destructor).
  CaqpCache* caqp_ = nullptr;
};

}  // namespace erq
