#pragma once

/// \file
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to frame
/// every persisted record so recovery can distinguish a torn tail from
/// valid data (DESIGN.md §7).

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace erq {

/// CRC-32 of `data`. `seed` chains multi-buffer computations: pass the
/// previous call's result to continue a running checksum.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Convenience overload for string payloads.
inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace erq
