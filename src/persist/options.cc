#include "persist/options.h"

namespace erq {

Status PersistOptions::Validate() const {
  if (!enabled()) return Status::OK();
  if (snapshot_journal_bytes == 0) {
    return Status::InvalidArgument(
        "PersistOptions.snapshot_journal_bytes must be positive: a zero "
        "threshold would rotate the snapshot on every journal append");
  }
  if (fsync_interval_ms < 0) {
    return Status::InvalidArgument(
        "PersistOptions.fsync_interval_ms must be non-negative (0 turns "
        "time-based fsync off)");
  }
  return Status::OK();
}

}  // namespace erq
