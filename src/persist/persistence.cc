#include "persist/persistence.h"

#include <utility>

#include "common/metrics.h"
#include "core/serialize.h"
#include "persist/failpoint.h"
#include "persist/io.h"
#include "persist/snapshot.h"

namespace erq {

namespace {

/// Persistence-layer instruments (journal-level ones live in journal.cc).
struct PersistMetrics {
  Counter* snapshots;
  Counter* recovery_replayed;
  Counter* recovery_truncated_bytes;
  Counter* skipped_opaque;
  Histogram* recovery_seconds;

  static const PersistMetrics& Get() {
    static const PersistMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return PersistMetrics{
          r.GetCounter("erq.persist.snapshots"),
          r.GetCounter("erq.persist.recovery_replayed"),
          r.GetCounter("erq.persist.recovery_truncated_bytes"),
          r.GetCounter("erq.persist.skipped_opaque"),
          r.GetHistogram("erq.persist.recovery_seconds"),
      };
    }();
    return m;
  }
};

}  // namespace

bool Persistence::Mirror::Add(const std::string& key) {
  if (index.find(key) != index.end()) return false;
  order.push_back(key);
  index.emplace(key, std::prev(order.end()));
  return true;
}

bool Persistence::Mirror::Erase(const std::string& key) {
  auto it = index.find(key);
  if (it == index.end()) return false;
  order.erase(it->second);
  index.erase(it);
  return true;
}

void Persistence::Mirror::Clear() {
  order.clear();
  index.clear();
}

Persistence::Persistence(PersistOptions options)
    : options_(std::move(options)) {}

StatusOr<std::unique_ptr<Persistence>> Persistence::Open(
    const PersistOptions& options) {
  return OpenImpl(options, /*read_only=*/false);
}

StatusOr<std::unique_ptr<Persistence>> Persistence::OpenReadOnly(
    const PersistOptions& options) {
  return OpenImpl(options, /*read_only=*/true);
}

StatusOr<std::unique_ptr<Persistence>> Persistence::OpenImpl(
    const PersistOptions& options, bool read_only) {
  ERQ_RETURN_IF_ERROR(options.Validate());
  if (!options.enabled()) {
    return Status::InvalidArgument("Persistence::Open: empty persist dir");
  }
  if (!read_only) ERQ_RETURN_IF_ERROR(CreateDirIfMissing(options.dir));
  std::unique_ptr<Persistence> p(new Persistence(options));
  p->read_only_ = read_only;
  MutexLock lock(&p->mu_);
  ERQ_RETURN_IF_ERROR(p->RecoverLocked());
  return p;
}

Status Persistence::RecoverLocked() {
  Timer timer;
  ERQ_ASSIGN_OR_RETURN(SnapshotScan snapshot, ReadSnapshot(options_.dir));
  ERQ_ASSIGN_OR_RETURN(JournalScan journal, ScanJournal(options_.dir));
  if (journal.truncated_bytes > 0) {
    recovered_.truncated_bytes = journal.truncated_bytes;
    // A read-only open reports the torn tail but must not repair it.
    if (!read_only_) {
      ERQ_RETURN_IF_ERROR(TruncateFileTo(
          options_.dir + "/" + kJournalFileName, journal.valid_bytes));
      PersistMetrics::Get().recovery_truncated_bytes->Increment(
          journal.truncated_bytes);
    }
  }
  // Replay into the mirrors: insert/store records are exactly the entries
  // that entered a cache, remove records exactly those that left it, so
  // literal application reproduces the final cache contents (replay is
  // idempotent: Add/Erase of an already-applied key is a no-op).
  auto apply = [this](const Record& rec) {
    switch (rec.type) {
      case RecordType::kCaqpInsert:
        caqp_mirror_.Add(rec.payload);
        break;
      case RecordType::kCaqpRemove:
        caqp_mirror_.Erase(rec.payload);
        break;
      case RecordType::kCaqpClear:
        caqp_mirror_.Clear();
        break;
      case RecordType::kMvStore:
        mv_mirror_.Add(rec.payload);
        break;
      case RecordType::kMvRemove:
        mv_mirror_.Erase(rec.payload);
        break;
      case RecordType::kMvClear:
        mv_mirror_.Clear();
        break;
      case RecordType::kFileHeader:
      case RecordType::kSnapshotFooter:
        break;
    }
  };
  for (const Record& rec : snapshot.records) apply(rec);
  for (const Record& rec : journal.records) apply(rec);
  recovered_.snapshot_records = snapshot.records.size();
  recovered_.journal_records =
      journal.records.empty() ? 0 : journal.records.size() - 1;

  recovered_.parts.reserve(caqp_mirror_.size());
  for (const std::string& line : caqp_mirror_.order) {
    // Every line survived a CRC check, so a parse failure means the file
    // was written by an incompatible build — surface it, don't guess.
    ERQ_ASSIGN_OR_RETURN(AtomicQueryPart part, ParsePart(line));
    recovered_.parts.push_back(std::move(part));
  }
  recovered_.mv_fingerprints.assign(mv_mirror_.order.begin(),
                                    mv_mirror_.order.end());

  recovered_.recovery_seconds = timer.Seconds();
  if (read_only_) return Status::OK();

  ERQ_RETURN_IF_ERROR(
      journal_.Open(options_.dir, /*truncate=*/false, options_));
  const PersistMetrics& m = PersistMetrics::Get();
  m.recovery_replayed->Increment(recovered_.snapshot_records +
                                 recovered_.journal_records);
  m.recovery_seconds->Observe(recovered_.recovery_seconds);
  return Status::OK();
}

Persistence::~Persistence() {
  // Detach before closing so no callback is in flight once the journal
  // goes away. SetChangeListener takes the cache lock; mu_ must not be
  // held here (lock order is cache → persistence).
  if (caqp_ != nullptr) caqp_->SetChangeListener(nullptr);
  MutexLock lock(&mu_);
  if (journal_.is_open() && io_status_.ok()) {
    (void)journal_.Sync();
  }
  journal_.Close();
}

Status Persistence::AttachCaqp(CaqpCache* cache) {
  for (const AtomicQueryPart& part : recovered_.parts) {
    cache->Insert(part);
  }
  // Re-base the mirror on what the cache actually kept: a smaller n_max
  // than the previous run's may have evicted some recovered parts, and
  // those evictions must not resurrect on the next startup. The snapshot
  // is taken before mu_ — lock order is cache → persistence, so no cache
  // lock may be acquired while mu_ is held. AttachCaqp runs before the
  // cache is shared (see header), so nothing mutates it in between.
  std::vector<AtomicQueryPart> kept = cache->Snapshot();
  {
    MutexLock lock(&mu_);
    caqp_mirror_.Clear();
    for (const AtomicQueryPart& part : kept) {
      StatusOr<std::string> line = SerializePart(part);
      if (line.ok()) caqp_mirror_.Add(*line);
    }
    caqp_ = cache;
  }
  cache->SetChangeListener(this);
  // Compact: after this, disk is exactly one snapshot of the live state
  // plus an empty journal, so journals never accumulate across restarts.
  MutexLock lock(&mu_);
  ERQ_RETURN_IF_ERROR(RotateLocked());
  return Status::OK();
}

void Persistence::InitMvMirror(const std::vector<std::string>& fps) {
  MutexLock lock(&mu_);
  mv_mirror_.Clear();
  for (const std::string& fp : fps) mv_mirror_.Add(fp);
}

void Persistence::AppendLocked(RecordType type, std::string_view payload) {
  if (!io_status_.ok()) return;
  Status s = journal_.Append(type, payload);
  if (!s.ok()) {
    io_status_ = s;
    return;
  }
  MaybeRotateLocked();
}

void Persistence::MaybeRotateLocked() {
  if (!io_status_.ok()) return;
  if (journal_.size_bytes() <= options_.snapshot_journal_bytes) return;
  Status s = RotateLocked();
  if (!s.ok()) io_status_ = s;
}

Status Persistence::RotateLocked() {
  std::vector<Record> body;
  body.reserve(caqp_mirror_.size() + mv_mirror_.size());
  for (const std::string& line : caqp_mirror_.order) {
    body.push_back(Record{RecordType::kCaqpInsert, line});
  }
  for (const std::string& fp : mv_mirror_.order) {
    body.push_back(Record{RecordType::kMvStore, fp});
  }
  ERQ_RETURN_IF_ERROR(WriteSnapshot(options_.dir, body));
  PersistMetrics::Get().snapshots->Increment();
  if (FailPointShouldFail("persist.journal.reset")) {
    return Status::IoError("simulated crash at persist.journal.reset");
  }
  journal_.Close();
  return journal_.Open(options_.dir, /*truncate=*/true, options_);
}

void Persistence::JournalMvStore(const std::string& fp) {
  MutexLock lock(&mu_);
  if (mv_mirror_.Add(fp)) AppendLocked(RecordType::kMvStore, fp);
}

void Persistence::JournalMvRemove(const std::string& fp) {
  MutexLock lock(&mu_);
  if (mv_mirror_.Erase(fp)) AppendLocked(RecordType::kMvRemove, fp);
}

void Persistence::JournalMvClear() {
  MutexLock lock(&mu_);
  mv_mirror_.Clear();
  AppendLocked(RecordType::kMvClear, "");
}

Status Persistence::Flush() {
  MutexLock lock(&mu_);
  if (!io_status_.ok()) return io_status_;
  Status s = journal_.Sync();
  if (!s.ok()) io_status_ = s;
  return s;
}

Status Persistence::SnapshotNow() {
  MutexLock lock(&mu_);
  if (!io_status_.ok()) return io_status_;
  Status s = RotateLocked();
  if (!s.ok()) io_status_ = s;
  return s;
}

Status Persistence::status() const {
  MutexLock lock(&mu_);
  return io_status_;
}

void Persistence::OnInsert(const AtomicQueryPart& aqp) {
  StatusOr<std::string> line = SerializePart(aqp);
  if (!line.ok()) {
    // Opaque terms have no serialized form: the part stays memory-only
    // (symmetrically skipped on removal via the mirror membership test).
    PersistMetrics::Get().skipped_opaque->Increment();
    return;
  }
  MutexLock lock(&mu_);
  if (caqp_mirror_.Add(*line)) AppendLocked(RecordType::kCaqpInsert, *line);
}

void Persistence::OnRemove(const AtomicQueryPart& aqp,
                           CaqpCache::RemoveReason /*reason*/) {
  StatusOr<std::string> line = SerializePart(aqp);
  if (!line.ok()) return;  // never journaled: nothing to remove
  MutexLock lock(&mu_);
  if (caqp_mirror_.Erase(*line)) AppendLocked(RecordType::kCaqpRemove, *line);
}

void Persistence::OnClear() {
  MutexLock lock(&mu_);
  caqp_mirror_.Clear();
  AppendLocked(RecordType::kCaqpClear, "");
}

}  // namespace erq
