#pragma once

/// \file
/// Fault-injection seam for the persistence layer. Always compiled in
/// (the production cost is one relaxed atomic load per IO boundary when
/// nothing is armed); tests arm named points to simulate a crash at
/// every write boundary and prove recovery invariants (DESIGN.md §7).

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace erq {

/// Process-wide registry of named crash points (the `erq::FailPoint`
/// seam). The persistence code
/// asks `ShouldFail(name)` at each IO boundary; a test arms `name` to
/// fire on its k-th hit. Once any armed point fires, the registry turns
/// *sticky*: every subsequent ShouldFail — any name — returns true,
/// modeling a dead process whose IO never succeeds again, until Reset().
///
/// Counting mode (`SetCounting(true)`) records a hit count for every
/// boundary crossed even when unarmed, so a test can census how many
/// crash points one workload passes through and then iterate over them.
///
/// Thread safety: fully synchronized; the unarmed fast path is a single
/// relaxed atomic load.
class FailPoint {
 public:
  /// The registry the persistence layer consults.
  static FailPoint& Global();

  /// Arms `name` to fire on its `fail_at`-th hit (0-based) from now.
  void Arm(const std::string& name, uint64_t fail_at) ERQ_EXCLUDES(mu_);

  /// Removes the arming for `name` (hit counters survive).
  void Disarm(const std::string& name) ERQ_EXCLUDES(mu_);

  /// Disarms everything, zeroes counters, clears the sticky-failure flag
  /// and leaves counting mode off.
  void Reset() ERQ_EXCLUDES(mu_);

  /// Count hits for every name (not just armed ones) until Reset().
  void SetCounting(bool on) ERQ_EXCLUDES(mu_);

  /// Hits recorded for `name` since the last Reset().
  uint64_t Hits(const std::string& name) const ERQ_EXCLUDES(mu_);

  /// Every name that recorded at least one hit since the last Reset().
  std::vector<std::string> Names() const ERQ_EXCLUDES(mu_);

  /// True if the caller must simulate a crash at this boundary. Counts
  /// the hit when armed or counting.
  bool ShouldFail(const std::string& name) ERQ_EXCLUDES(mu_);

  /// True once an armed point has fired (and until Reset()).
  bool failed() const { return sticky_.load(std::memory_order_relaxed); }

  /// True when any point is armed or counting is on — callers use this
  /// to skip building failpoint name strings on hot paths.
  bool active() const { return active_.load(std::memory_order_relaxed) != 0; }

 private:
  struct Point {
    bool armed = false;
    uint64_t fail_at = 0;
    uint64_t hits = 0;
  };

  // Consulted at IO boundaries while Persistence::mu_ is held; acquires
  // nothing itself.
  mutable Mutex mu_
      ERQ_ACQUIRED_AFTER(lock_order::kFailPoint){lock_order::kFailPoint};
  std::map<std::string, Point> points_ ERQ_GUARDED_BY(mu_);
  bool counting_ ERQ_GUARDED_BY(mu_) = false;
  std::atomic<int> active_{0};
  std::atomic<bool> sticky_{false};
};

/// True when the persistence code should simulate a crash at boundary
/// `name`. The wrapper keeps call sites one line and skips all work when
/// the registry is idle.
inline bool FailPointShouldFail(const std::string& name) {
  FailPoint& fp = FailPoint::Global();
  if (!fp.active() && !fp.failed()) return false;
  return fp.ShouldFail(name);
}

}  // namespace erq
