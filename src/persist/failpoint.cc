#include "persist/failpoint.h"

namespace erq {

FailPoint& FailPoint::Global() {
  static FailPoint* instance = new FailPoint();
  return *instance;
}

void FailPoint::Arm(const std::string& name, uint64_t fail_at) {
  MutexLock lock(&mu_);
  Point& p = points_[name];
  p.armed = true;
  p.fail_at = p.hits + fail_at;
  active_.store(1, std::memory_order_relaxed);
}

void FailPoint::Disarm(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = points_.find(name);
  if (it != points_.end()) it->second.armed = false;
  bool any_armed = false;
  for (const auto& [unused, p] : points_) any_armed |= p.armed;
  active_.store(any_armed || counting_ ? 1 : 0, std::memory_order_relaxed);
}

void FailPoint::Reset() {
  MutexLock lock(&mu_);
  points_.clear();
  counting_ = false;
  active_.store(0, std::memory_order_relaxed);
  sticky_.store(false, std::memory_order_relaxed);
}

void FailPoint::SetCounting(bool on) {
  MutexLock lock(&mu_);
  counting_ = on;
  bool any_armed = false;
  for (const auto& [unused, p] : points_) any_armed |= p.armed;
  active_.store(any_armed || counting_ ? 1 : 0, std::memory_order_relaxed);
}

uint64_t FailPoint::Hits(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

std::vector<std::string> FailPoint::Names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, p] : points_) {
    if (p.hits > 0) out.push_back(name);
  }
  return out;
}

bool FailPoint::ShouldFail(const std::string& name) {
  if (sticky_.load(std::memory_order_relaxed)) return true;
  MutexLock lock(&mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    if (!counting_) return false;
    it = points_.emplace(name, Point{}).first;
  }
  Point& p = it->second;
  uint64_t hit = p.hits++;
  if (p.armed && hit == p.fail_at) {
    sticky_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace erq
