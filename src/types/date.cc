#include "types/date.h"

#include <cstdio>

namespace erq {

namespace {

// Howard Hinnant's civil-from-days / days-from-civil algorithms.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y_out, int* m_out, int* d_out) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *y_out = static_cast<int>(y + (m <= 2));
  *m_out = static_cast<int>(m);
  *d_out = static_cast<int>(d);
}

}  // namespace

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

StatusOr<int32_t> DateFromYmd(int year, int month, int day) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range");
  }
  static const int kDaysInMonth[] = {31, 28, 31, 30, 31, 30,
                                     31, 31, 30, 31, 30, 31};
  int max_day = kDaysInMonth[month - 1];
  if (month == 2 && IsLeapYear(year)) max_day = 29;
  if (day < 1 || day > max_day) {
    return Status::InvalidArgument("day out of range");
  }
  if (year < 1 || year > 9999) {
    return Status::InvalidArgument("year out of range");
  }
  return static_cast<int32_t>(DaysFromCivil(year, month, day));
}

StatusOr<int32_t> DateFromString(const std::string& s) {
  int y = 0, m = 0, d = 0;
  char extra = '\0';
  if (std::sscanf(s.c_str(), "%d-%d-%d%c", &y, &m, &d, &extra) != 3) {
    return Status::ParseError("invalid date literal '" + s +
                              "' (want YYYY-MM-DD)");
  }
  return DateFromYmd(y, m, d);
}

std::string DateToString(int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

void DateToYmd(int32_t days, int* year, int* month, int* day) {
  CivilFromDays(days, year, month, day);
}

}  // namespace erq
