#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "common/statusor.h"
#include "types/data_type.h"

namespace erq {

/// A dynamically typed scalar: NULL, INT (int64), DOUBLE, STRING, or DATE.
/// Values are ordered within comparable types; INT and DOUBLE compare
/// numerically with each other. Comparing incomparable types is an error the
/// binder rejects earlier; the raw Compare() falls back to type-tag order so
/// containers stay usable.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : type_(DataType::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.type_ = DataType::kInt64;
    out.data_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type_ = DataType::kDouble;
    out.data_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = DataType::kString;
    out.data_ = std::move(v);
    return out;
  }
  /// `days` is days since 1970-01-01.
  static Value Date(int32_t days) {
    Value out;
    out.type_ = DataType::kDate;
    out.data_ = static_cast<int64_t>(days);
    return out;
  }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  /// Numeric view: INT and DATE widen to double; only DOUBLE reads the
  /// double alternative directly.
  double AsDouble() const {
    if (type_ == DataType::kInt64 || type_ == DataType::kDate) {
      return static_cast<double>(std::get<int64_t>(data_));
    }
    return std::get<double>(data_);
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  int32_t AsDate() const { return static_cast<int32_t>(std::get<int64_t>(data_)); }

  /// Three-way comparison: negative / zero / positive. NULL sorts first.
  /// INT and DOUBLE compare numerically; otherwise mismatched types compare
  /// by type tag (total order for container use).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// True if this and `other` have comparable types (see TypesComparable).
  bool ComparableWith(const Value& other) const {
    return TypesComparable(type_, other.type_);
  }

  size_t Hash() const;

  /// SQL-literal rendering: strings quoted, dates as DATE 'YYYY-MM-DD'.
  std::string ToString() const;

 private:
  DataType type_;
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

/// A tuple of values; schema lives alongside (see Schema).
using Row = std::vector<Value>;

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

struct RowHash {
  size_t operator()(const Row& row) const;
};

}  // namespace erq

