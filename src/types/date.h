#pragma once

#include <cstdint>
#include <string>

#include "common/statusor.h"

namespace erq {

/// Calendar-date helpers. Dates are represented as int32 days since the
/// epoch 1970-01-01 (proleptic Gregorian).

/// Converts a calendar date to days-since-epoch. Validates ranges.
StatusOr<int32_t> DateFromYmd(int year, int month, int day);

/// Parses "YYYY-MM-DD".
StatusOr<int32_t> DateFromString(const std::string& s);

/// Formats days-since-epoch as "YYYY-MM-DD".
std::string DateToString(int32_t days);

/// Decomposes days-since-epoch into calendar fields.
void DateToYmd(int32_t days, int* year, int* month, int* day);

/// True for leap years in the proleptic Gregorian calendar.
bool IsLeapYear(int year);

}  // namespace erq

