#pragma once

#include <string>
#include <vector>

#include "common/statusor.h"
#include "types/data_type.h"

namespace erq {

/// A named, typed column.
struct Column {
  std::string name;
  DataType type;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of columns. Column names are unique within a schema
/// (enforced at table-creation time by the catalog).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of `name` (case-insensitive) or NotFound.
  StatusOr<size_t> IndexOf(const std::string& name) const;

  /// True if a column with `name` exists (case-insensitive).
  bool Contains(const std::string& name) const;

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  /// "name TYPE, name TYPE, ..."
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace erq

