#pragma once

namespace erq {

/// Column / value types supported by the engine. kDate is stored as days
/// since 1970-01-01 but compares and prints as a calendar date.
enum class DataType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
  kDate,
};

inline const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kDate:
      return "DATE";
  }
  return "?";
}

/// True if values of `a` and `b` can be compared with each other.
/// Numeric types are mutually comparable; otherwise types must match.
inline bool TypesComparable(DataType a, DataType b) {
  if (a == b) return true;
  auto numeric = [](DataType t) {
    return t == DataType::kInt64 || t == DataType::kDouble;
  };
  return numeric(a) && numeric(b);
}

}  // namespace erq

