#include "types/schema.h"

#include "common/string_util.h"

namespace erq {

StatusOr<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

bool Schema::Contains(const std::string& name) const {
  return IndexOf(name).ok();
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += DataTypeToString(columns_[i].type);
  }
  return out;
}

}  // namespace erq
