#include "types/value.h"

#include <functional>

#include "common/hash.h"
#include "types/date.h"

namespace erq {

namespace {

int CompareDouble(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  if (type_ == other.type_) {
    switch (type_) {
      case DataType::kNull:
        return 0;
      case DataType::kInt64:
      case DataType::kDate: {
        int64_t a = std::get<int64_t>(data_);
        int64_t b = std::get<int64_t>(other.data_);
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      case DataType::kDouble:
        return CompareDouble(std::get<double>(data_),
                             std::get<double>(other.data_));
      case DataType::kString:
        return AsString().compare(other.AsString());
    }
  }
  // NULL sorts before everything.
  if (type_ == DataType::kNull) return -1;
  if (other.type_ == DataType::kNull) return 1;
  if (ComparableWith(other)) {
    return CompareDouble(AsDouble(), other.AsDouble());
  }
  // Fallback total order by type tag.
  return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(type_);
  switch (type_) {
    case DataType::kNull:
      break;
    case DataType::kInt64:
    case DataType::kDate:
      // Hash INT and DOUBLE holding the same numeric value identically so
      // hash joins across the two types behave like Compare().
      seed = 0;
      HashCombine(&seed, AsDouble());
      if (type_ == DataType::kDate) HashCombine(&seed, 17);
      break;
    case DataType::kDouble:
      seed = 0;
      HashCombine(&seed, std::get<double>(data_));
      break;
    case DataType::kString:
      HashCombine(&seed, AsString());
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case DataType::kDouble: {
      std::string s = std::to_string(std::get<double>(data_));
      return s;
    }
    case DataType::kString:
      return "'" + AsString() + "'";
    case DataType::kDate:
      return "DATE '" + DateToString(AsDate()) + "'";
  }
  return "?";
}

size_t RowHash::operator()(const Row& row) const {
  size_t seed = row.size();
  for (const Value& v : row) HashCombine(&seed, v.Hash());
  return seed;
}

}  // namespace erq
